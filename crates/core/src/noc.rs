//! The mesh NoC: a policy-pluggable routing fabric over dense per-link
//! occupancy state, plus the global memory controller at corner (0, 0).
//!
//! Three design choices keep the per-message work allocation-free:
//!
//! * **Dense link state.** Every directed mesh link maps 1:1 to an
//!   *outgoing port* of its source router (`E`/`W`/`S`/`N`, plus the
//!   memory port at router 0), so occupancy lives in one flat
//!   `Vec<SimTime>` indexed `router * PORTS + port` — no hash probes on
//!   the hot path, sized once at construction from the mesh dimensions.
//! * **Iterator routes.** A [`Route`] walks the links of a message lazily;
//!   nothing is collected into a `Vec` per transfer.
//! * **Cached cost constants.** [`NocCosts`] derives the per-message
//!   constants (hop latency, clocks, per-flit energies, memory-system
//!   parameters) from the [`ArchConfig`] once per simulation instead of
//!   rebuilding a [`CostModel`](pimsim_arch::model::CostModel) per
//!   transfer. Every formula mirrors the `CostModel` one exactly (a unit
//!   test pins the equivalence), so swapping the fabric cannot move a
//!   single picosecond.
//!
//! Which links a message takes is decided by a [`Routing`] policy — the
//! seam LP5X-PIM-style interconnect studies plug into. The built-in
//! policies ([`Xy`], [`Yx`], [`XyYxAlternate`]) are selected by
//! [`ArchConfig`]`.noc.routing`; all of them produce minimal (Manhattan)
//! routes, so only *contention*, never distance, differs between them.

use std::fmt;

use pimsim_arch::model::{Cost, CostModel};
use pimsim_arch::{ArchConfig, Energy, RoutingPolicy};
use pimsim_event::{Clock, SimTime};

/// A unidirectional mesh link identified by `(from_router, to_router)`.
/// The memory port uses `to_router == MEM_NODE`.
pub const MEM_NODE: u16 = u16::MAX;

/// Outgoing ports per router: the four mesh directions plus the global
/// memory port (only ever used at router 0, but sized uniformly so the
/// dense index is a single multiply-add).
pub const PORTS: usize = 5;

const EAST: usize = 0;
const WEST: usize = 1;
const SOUTH: usize = 2;
const NORTH: usize = 3;
const MEM_PORT: usize = 4;

/// The dimension order one message's route walks the mesh in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DimOrder {
    /// Columns first (X), then rows (Y).
    XFirst,
    /// Rows first (Y), then columns (X).
    YFirst,
}

/// A routing policy: picks the dimension order of each message.
///
/// The built-in policies are stateless strategy objects; per-message
/// variation comes from the `msg_seq` argument (the fabric's injection
/// counter), which keeps the trait `Send + Sync` and the fabric
/// deterministic. Higher-fidelity policies (adaptive, credit-aware)
/// implement the same seam without touching the transfer fabric.
pub trait Routing: fmt::Debug + Send + Sync {
    /// Dimension order for the `msg_seq`-th message injected into the
    /// fabric, travelling `from -> to`.
    fn order(&self, from: u16, to: u16, msg_seq: u64) -> DimOrder;

    /// Short policy name (for reports and labels).
    fn name(&self) -> &'static str;
}

/// X-then-Y dimension-order routing — the paper's mesh, the default.
#[derive(Debug, Clone, Copy, Default)]
pub struct Xy;

impl Routing for Xy {
    fn order(&self, _from: u16, _to: u16, _msg_seq: u64) -> DimOrder {
        DimOrder::XFirst
    }

    fn name(&self) -> &'static str {
        "xy"
    }
}

/// Y-then-X dimension-order routing.
#[derive(Debug, Clone, Copy, Default)]
pub struct Yx;

impl Routing for Yx {
    fn order(&self, _from: u16, _to: u16, _msg_seq: u64) -> DimOrder {
        DimOrder::YFirst
    }

    fn name(&self) -> &'static str {
        "yx"
    }
}

/// O1TURN-style routing: even-numbered messages go X-first, odd-numbered
/// Y-first, spreading load across the two minimal dimension orders.
#[derive(Debug, Clone, Copy, Default)]
pub struct XyYxAlternate;

impl Routing for XyYxAlternate {
    fn order(&self, _from: u16, _to: u16, msg_seq: u64) -> DimOrder {
        if msg_seq.is_multiple_of(2) {
            DimOrder::XFirst
        } else {
            DimOrder::YFirst
        }
    }

    fn name(&self) -> &'static str {
        "xy-yx"
    }
}

/// The built-in [`Routing`] instance for a configured [`RoutingPolicy`].
pub fn routing_for(policy: RoutingPolicy) -> &'static dyn Routing {
    match policy {
        RoutingPolicy::Xy => &Xy,
        RoutingPolicy::Yx => &Yx,
        RoutingPolicy::XyYxAlternate => &XyYxAlternate,
    }
}

/// An allocation-free walk of one message's minimal route: yields the
/// directed links `(from_router, to_router)` in traversal order.
#[derive(Debug, Clone)]
pub struct Route {
    cols: u16,
    cur: u16,
    to: u16,
    order: DimOrder,
}

impl Iterator for Route {
    type Item = (u16, u16);

    fn next(&mut self) -> Option<(u16, u16)> {
        if self.cur == self.to {
            return None;
        }
        let (cr, cc) = (self.cur / self.cols, self.cur % self.cols);
        let (tr, tc) = (self.to / self.cols, self.to % self.cols);
        let x_next = || {
            let next_c = if tc > cc { cc + 1 } else { cc - 1 };
            cr * self.cols + next_c
        };
        let y_next = || {
            let next_r = if tr > cr { cr + 1 } else { cr - 1 };
            next_r * self.cols + cc
        };
        let next = match self.order {
            DimOrder::XFirst => {
                if cc != tc {
                    x_next()
                } else {
                    y_next()
                }
            }
            DimOrder::YFirst => {
                if cr != tr {
                    y_next()
                } else {
                    x_next()
                }
            }
        };
        let link = (self.cur, next);
        self.cur = next;
        Some(link)
    }
}

/// Per-message cost constants, derived once from an [`ArchConfig`].
///
/// The transfer hot path used to rebuild a [`CostModel`] (and its clocks)
/// per message; this struct hoists everything a message needs into plain
/// fields. Each method reproduces the corresponding `CostModel` formula
/// term for term — `matches_cost_model` in the test module pins the
/// equivalence — so results are bit-identical, just cheaper to reach.
#[derive(Debug, Clone, Copy)]
pub struct NocCosts {
    hop: SimTime,
    noc_clock: Clock,
    core_clock: Clock,
    flit_bytes: u64,
    link_flits_per_cycle: f64,
    noc_pj_per_flit_hop: f64,
    local_mem_access_cycles: u64,
    local_mem_pj_per_elem: f64,
    global_mem_latency_ns: f64,
    global_mem_bw_elems_per_ns: f64,
    global_mem_pj_per_elem: f64,
    cols: u16,
}

impl NocCosts {
    /// Derives the constants from `cfg`.
    pub fn new(cfg: &ArchConfig) -> NocCosts {
        let model = CostModel::new(cfg);
        NocCosts {
            hop: model.noc_hop_latency(1),
            noc_clock: model.noc_clock(),
            core_clock: model.core_clock(),
            flit_bytes: cfg.noc.flit_bytes as u64,
            link_flits_per_cycle: cfg.noc.link_flits_per_cycle,
            noc_pj_per_flit_hop: cfg.energy.noc_pj_per_flit_hop,
            local_mem_access_cycles: cfg.timing.local_mem_access_cycles as u64,
            local_mem_pj_per_elem: cfg.energy.local_mem_pj_per_elem,
            global_mem_latency_ns: cfg.timing.global_mem_latency_ns,
            global_mem_bw_elems_per_ns: cfg.timing.global_mem_bw_elems_per_ns,
            global_mem_pj_per_elem: cfg.energy.global_mem_pj_per_elem,
            cols: cfg.resources.core_cols,
        }
    }

    /// One-hop pipe latency (`hop_cycles` NoC cycles).
    pub fn hop(&self) -> SimTime {
        self.hop
    }

    /// Flits needed to carry `elems` 32-bit elements (plus a header flit).
    pub fn flits_for_elems(&self, elems: u32) -> u64 {
        1 + (elems as u64 * 4).div_ceil(self.flit_bytes)
    }

    /// Time for one link to forward `flits` flits.
    pub fn serialization(&self, flits: u64) -> SimTime {
        let cycles = (flits as f64 / self.link_flits_per_cycle).ceil() as u64;
        self.noc_clock.cycles_to_time(cycles)
    }

    /// NoC energy for `flits` flits crossing `hops` hops.
    pub fn noc_energy(&self, flits: u64, hops: u32) -> Energy {
        Energy::from_pj(flits as f64 * hops as f64 * self.noc_pj_per_flit_hop)
    }

    /// Manhattan hop distance between two routers — the length of every
    /// minimal route, whatever the dimension order.
    pub fn hops(&self, a: u16, b: u16) -> u32 {
        let (ar, ac) = (a / self.cols, a % self.cols);
        let (br, bc) = (b / self.cols, b % self.cols);
        (ar.abs_diff(br) + ac.abs_diff(bc)) as u32
    }

    /// Cost of a same-core "transfer": a local scratchpad copy.
    pub fn local_copy(&self, elems: u32) -> Cost {
        let cycles = self.local_mem_access_cycles + elems as u64;
        Cost {
            time: self.core_clock.cycles_to_time(cycles),
            energy: Energy::from_pj(2.0 * elems as f64 * self.local_mem_pj_per_elem),
        }
    }

    /// Cost of a global-memory access of `elems` elements (latency +
    /// bandwidth serialization at the controller; NoC cost is separate).
    pub fn global_mem(&self, elems: u32) -> Cost {
        let time_ns = self.global_mem_latency_ns + elems as f64 / self.global_mem_bw_elems_per_ns;
        Cost {
            time: SimTime::from_ns_f64(time_ns),
            energy: Energy::from_pj(elems as f64 * self.global_mem_pj_per_elem),
        }
    }

    /// Dynamic energy of a core-to-core message: NoC wire/router energy
    /// along the (minimal) route, or the scratchpad-copy energy when
    /// `from == to`.
    pub fn message_energy(&self, from: u16, to: u16, elems: u32) -> Energy {
        if from == to {
            self.local_copy(elems).energy
        } else {
            self.noc_energy(self.flits_for_elems(elems), self.hops(from, to))
        }
    }
}

/// The head/tail progression of one packet walking links in sequence.
#[derive(Debug, Clone, Copy)]
struct Walk {
    head: SimTime,
    tail: SimTime,
}

/// Per-link and controller occupancy state.
#[derive(Debug, Clone)]
pub struct Noc {
    rows: u16,
    cols: u16,
    /// `free_at` per directed link, indexed `router * PORTS + port`.
    link_free: Vec<SimTime>,
    /// Global memory controller service queue.
    mem_free: SimTime,
    /// Messages injected so far (feeds per-message policy decisions).
    msg_seq: u64,
    routing: &'static dyn Routing,
}

impl Noc {
    /// Builds the link state for a `rows` × `cols` mesh with XY routing.
    ///
    /// # Panics
    ///
    /// Panics when either dimension is zero or the mesh has more routers
    /// than the 16-bit core-id space can address.
    pub fn new(rows: u16, cols: u16) -> Noc {
        Noc::with_routing(rows, cols, &Xy)
    }

    /// Builds the link state for a `rows` × `cols` mesh routed by
    /// `routing`.
    ///
    /// # Panics
    ///
    /// Panics when either dimension is zero or the mesh has more routers
    /// than the 16-bit core-id space can address.
    pub fn with_routing(rows: u16, cols: u16, routing: &'static dyn Routing) -> Noc {
        assert!(rows > 0 && cols > 0, "mesh must have at least one router");
        assert!(
            rows as u32 * cols as u32 <= MEM_NODE as u32,
            "mesh {rows}x{cols} exceeds the 16-bit core-id space"
        );
        Noc {
            rows,
            cols,
            link_free: vec![SimTime::ZERO; rows as usize * cols as usize * PORTS],
            mem_free: SimTime::ZERO,
            msg_seq: 0,
            routing,
        }
    }

    /// Builds the NoC for a (validated) architecture configuration,
    /// including its configured routing policy.
    pub fn for_arch(cfg: &ArchConfig) -> Noc {
        Noc::with_routing(
            cfg.resources.core_rows,
            cfg.resources.core_cols,
            routing_for(cfg.noc.routing),
        )
    }

    /// Routers in the mesh.
    fn routers(&self) -> u32 {
        self.rows as u32 * self.cols as u32
    }

    /// Debug-asserts that `core` addresses a router inside the mesh. Out
    /// of range ids would otherwise index outside the dense link table.
    fn check_core(&self, core: u16) {
        debug_assert!(
            (core as u32) < self.routers(),
            "core {core} outside the {}x{} mesh",
            self.rows,
            self.cols
        );
    }

    /// The dense index of the directed link `from -> to`. The two routers
    /// are always mesh neighbours (or `to == MEM_NODE`), so the outgoing
    /// port is recoverable from their difference.
    fn link_index(&self, from: u16, to: u16) -> usize {
        let port = if to == MEM_NODE {
            MEM_PORT
        } else if to as u32 == from as u32 + 1 {
            EAST
        } else if to as u32 + 1 == from as u32 {
            WEST
        } else if to as u32 == from as u32 + self.cols as u32 {
            SOUTH
        } else {
            debug_assert!(to as u32 + self.cols as u32 == from as u32, "not a link");
            NORTH
        };
        from as usize * PORTS + port
    }

    /// The occupancy (`free_at`) of the directed link `from -> to`.
    pub fn link_free(&self, from: u16, to: u16) -> SimTime {
        self.link_free[self.link_index(from, to)]
    }

    /// The minimal route between two routers under `order`, as an
    /// allocation-free iterator of directed links.
    pub fn route(&self, from: u16, to: u16, order: DimOrder) -> Route {
        self.check_core(from);
        self.check_core(to);
        Route {
            cols: self.cols,
            cur: from,
            to,
            order,
        }
    }

    /// The injection counter for the next message, advancing it.
    fn next_msg(&mut self) -> u64 {
        let seq = self.msg_seq;
        self.msg_seq += 1;
        seq
    }

    /// Sends a core-to-core message; returns its delivery (completion) time.
    ///
    /// A self-message (`from == to`) never touches the mesh: it is a local
    /// scratchpad copy and costs [`NocCosts::local_copy`], not zero —
    /// same-core rendezvous still has to move the payload.
    pub fn message(
        &mut self,
        from: u16,
        to: u16,
        elems: u32,
        start: SimTime,
        costs: &NocCosts,
    ) -> SimTime {
        if from == to {
            self.check_core(from);
            return start + costs.local_copy(elems).time;
        }
        let flits = costs.flits_for_elems(elems);
        let ser = costs.serialization(flits);
        let order = self.routing.order(from, to, self.next_msg());
        let route = self.route(from, to, order);
        let mut walk = Walk {
            head: start,
            tail: start,
        };
        self.walk_route(route, &mut walk, costs.hop, ser);
        walk.tail
    }

    /// Walks a packet along `route`, reserving each link in turn.
    fn walk_route(&mut self, route: Route, walk: &mut Walk, hop: SimTime, ser: SimTime) {
        for (a, b) in route {
            let idx = self.link_index(a, b);
            walk.head = walk.head.max(self.link_free[idx]) + hop;
            walk.tail = walk.head + ser;
            self.link_free[idx] = walk.tail;
        }
    }

    /// A global-memory access from `core`: ride the mesh to corner (0,0),
    /// cross the memory port, queue at the controller, pay DRAM latency +
    /// bandwidth. Returns the completion time.
    pub fn memory_access(
        &mut self,
        core: u16,
        elems: u32,
        start: SimTime,
        costs: &NocCosts,
    ) -> SimTime {
        self.check_core(core);
        let flits = costs.flits_for_elems(elems);
        let ser = costs.serialization(flits);
        let order = self.routing.order(core, 0, self.next_msg());
        let route = self.route(core, 0, order);
        let mut walk = Walk {
            head: start,
            tail: start,
        };
        self.walk_route(route, &mut walk, costs.hop, ser);
        // The memory port continues the same head progression.
        let idx = self.link_index(0, MEM_NODE);
        walk.head = walk.head.max(self.link_free[idx]) + costs.hop;
        walk.tail = walk.head + ser;
        self.link_free[idx] = walk.tail;
        let arrived = walk.tail;
        let service_start = arrived.max(self.mem_free);
        let done = service_start + costs.global_mem(elems).time;
        self.mem_free = done;
        done
    }

    /// Number of mesh rows.
    pub fn rows(&self) -> u16 {
        self.rows
    }

    /// Number of mesh columns.
    pub fn cols(&self) -> u16 {
        self.cols
    }

    /// The active routing policy.
    pub fn routing(&self) -> &'static dyn Routing {
        self.routing
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn costs(cfg: &ArchConfig) -> NocCosts {
        NocCosts::new(cfg)
    }

    #[test]
    fn xy_route_shape() {
        let noc = Noc::new(4, 4);
        // core 1 (0,1) -> core 14 (3,2): x to col 2, then y down.
        let r: Vec<_> = noc.route(1, 14, DimOrder::XFirst).collect();
        assert_eq!(r, vec![(1, 2), (2, 6), (6, 10), (10, 14)]);
        assert_eq!(noc.route(5, 5, DimOrder::XFirst).count(), 0);
        assert_eq!(noc.rows(), 4);
        assert_eq!(noc.cols(), 4);
        assert_eq!(noc.routing().name(), "xy");
    }

    #[test]
    fn yx_route_shape() {
        let noc = Noc::new(4, 4);
        // core 1 (0,1) -> core 14 (3,2): y down to row 3 first, then x.
        let r: Vec<_> = noc.route(1, 14, DimOrder::YFirst).collect();
        assert_eq!(r, vec![(1, 5), (5, 9), (9, 13), (13, 14)]);
    }

    #[test]
    fn alternate_policy_flips_order_per_message() {
        let p = XyYxAlternate;
        assert_eq!(p.order(0, 15, 0), DimOrder::XFirst);
        assert_eq!(p.order(0, 15, 1), DimOrder::YFirst);
        assert_eq!(p.order(0, 15, 2), DimOrder::XFirst);
        assert_eq!(Xy.order(0, 15, 1), DimOrder::XFirst);
        assert_eq!(Yx.order(0, 15, 2), DimOrder::YFirst);
    }

    #[test]
    fn routing_for_maps_every_policy() {
        use pimsim_arch::RoutingPolicy;
        assert_eq!(routing_for(RoutingPolicy::Xy).name(), "xy");
        assert_eq!(routing_for(RoutingPolicy::Yx).name(), "yx");
        assert_eq!(routing_for(RoutingPolicy::XyYxAlternate).name(), "xy-yx");
    }

    #[test]
    #[should_panic(expected = "at least one router")]
    fn zero_sized_mesh_is_rejected() {
        let _ = Noc::new(0, 4);
    }

    #[test]
    #[should_panic(expected = "outside the 2x2 mesh")]
    fn out_of_mesh_core_is_rejected() {
        // Regression: ids >= rows*cols used to silently fabricate
        // out-of-mesh links instead of failing.
        let noc = Noc::new(2, 2);
        let _ = noc.route(0, 4, DimOrder::XFirst);
    }

    #[test]
    #[should_panic(expected = "outside the")]
    fn out_of_mesh_memory_access_is_rejected() {
        let cfg = ArchConfig::paper_default();
        let c = costs(&cfg);
        let mut noc = Noc::new(2, 2);
        let _ = noc.memory_access(9, 64, SimTime::ZERO, &c);
    }

    #[test]
    fn for_arch_matches_config_mesh_and_policy() {
        let mut cfg = ArchConfig::small_test();
        cfg.noc.routing = pimsim_arch::RoutingPolicy::Yx;
        let noc = Noc::for_arch(&cfg);
        assert_eq!(noc.rows(), cfg.resources.core_rows);
        assert_eq!(noc.cols(), cfg.resources.core_cols);
        assert_eq!(noc.routing().name(), "yx");
    }

    #[test]
    fn self_message_charges_local_copy() {
        // Pinned choice: same-core rendezvous is NOT free — it pays the
        // scratchpad-copy cost from the shared cost model.
        let cfg = ArchConfig::paper_default();
        let c = costs(&cfg);
        let mut noc = Noc::new(8, 8);
        let start = SimTime::from_ns(5);
        let done = noc.message(5, 5, 256, start, &c);
        assert_eq!(done, start + c.local_copy(256).time);
        assert!(done > start);
        // And it never reserves mesh links.
        assert!(noc.link_free.iter().all(|t| t.is_zero()));
    }

    #[test]
    fn farther_is_slower() {
        let cfg = ArchConfig::paper_default();
        let c = costs(&cfg);
        let mut noc = Noc::new(8, 8);
        let near = noc.message(0, 1, 64, SimTime::ZERO, &c);
        let mut noc2 = Noc::new(8, 8);
        let far = noc2.message(0, 63, 64, SimTime::ZERO, &c);
        assert!(far > near);
    }

    #[test]
    fn contention_serializes_on_shared_links() {
        let cfg = ArchConfig::paper_default();
        let c = costs(&cfg);
        let mut noc = Noc::new(8, 8);
        let first = noc.message(0, 7, 1024, SimTime::ZERO, &c);
        // Same path immediately afterwards: must wait behind the first.
        let second = noc.message(0, 7, 1024, SimTime::ZERO, &c);
        assert!(second > first);
        // A disjoint path is unaffected.
        let mut fresh = Noc::new(8, 8);
        let disjoint_fresh = fresh.message(56, 63, 1024, SimTime::ZERO, &c);
        let disjoint_after = noc.message(56, 63, 1024, SimTime::ZERO, &c);
        assert_eq!(disjoint_fresh, disjoint_after);
    }

    #[test]
    fn memory_controller_queues() {
        let cfg = ArchConfig::paper_default();
        let c = costs(&cfg);
        let mut noc = Noc::new(8, 8);
        let a = noc.memory_access(0, 4096, SimTime::ZERO, &c);
        let b = noc.memory_access(63, 4096, SimTime::ZERO, &c);
        assert!(b > a, "controller should serialize concurrent streams");
        assert!(!noc.link_free(0, MEM_NODE).is_zero(), "mem port reserved");
    }

    #[test]
    fn noc_costs_match_the_cost_model() {
        // NocCosts is a hot-path cache of CostModel, not a second model:
        // every derived quantity must agree exactly.
        for cfg in [ArchConfig::paper_default(), ArchConfig::small_test()] {
            let m = CostModel::new(&cfg);
            let c = NocCosts::new(&cfg);
            assert_eq!(c.hop(), m.noc_hop_latency(1));
            for elems in [0u32, 1, 8, 9, 64, 1000, 4096] {
                assert_eq!(c.flits_for_elems(elems), m.flits_for_elems(elems));
                assert_eq!(c.local_copy(elems), m.local_copy_cost(elems));
                assert_eq!(c.global_mem(elems), m.global_mem_cost(elems));
            }
            for flits in [1u64, 2, 17, 129] {
                assert_eq!(c.serialization(flits), m.link_serialization(flits));
                assert_eq!(c.noc_energy(flits, 3), m.noc_energy(flits, 3));
            }
            for (a, b) in [(0u16, 0u16), (0, 9), (5, 5), (0, 8)] {
                assert_eq!(c.hops(a, b), cfg.resources.mesh_hops(a, b));
                assert_eq!(c.message_energy(a, b, 64), m.message_energy(a, b, 64));
            }
        }
    }

    #[test]
    fn dense_occupancy_tracks_every_directed_link() {
        // Bidirectional traffic on one edge occupies two distinct slots.
        let cfg = ArchConfig::paper_default();
        let c = costs(&cfg);
        let mut noc = Noc::new(2, 2);
        noc.message(0, 1, 64, SimTime::ZERO, &c);
        noc.message(1, 0, 64, SimTime::ZERO, &c);
        assert!(!noc.link_free(0, 1).is_zero());
        assert!(!noc.link_free(1, 0).is_zero());
        assert_ne!(noc.link_index(0, 1), noc.link_index(1, 0));
    }
}

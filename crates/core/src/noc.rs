//! The mesh NoC: a policy-pluggable routing fabric over dense per-link
//! occupancy state, plus the global memory controller at corner (0, 0).
//!
//! Three design choices keep the per-message work allocation-free:
//!
//! * **Dense link state.** Every directed mesh link maps 1:1 to an
//!   *outgoing port* of its source router (`E`/`W`/`S`/`N`, plus the
//!   memory port at router 0), so occupancy lives in one flat
//!   `Vec<SimTime>` indexed `router * PORTS + port` — no hash probes on
//!   the hot path, sized once at construction from the mesh dimensions.
//! * **Iterator routes.** A [`Route`] walks the links of a message lazily;
//!   nothing is collected into a `Vec` per transfer.
//! * **Cached cost constants.** [`NocCosts`] derives the per-message
//!   constants (hop latency, clocks, per-flit energies, memory-system
//!   parameters) from the [`ArchConfig`] once per simulation instead of
//!   rebuilding a [`CostModel`](pimsim_arch::model::CostModel) per
//!   transfer. Every formula mirrors the `CostModel` one exactly (a unit
//!   test pins the equivalence), so swapping the fabric cannot move a
//!   single picosecond.
//!
//! Which links a message takes is decided by a [`Routing`] policy — the
//! seam LP5X-PIM-style interconnect studies plug into. The built-in
//! policies ([`Xy`], [`Yx`], [`XyYxAlternate`], [`Adaptive`]) are selected
//! by [`ArchConfig`]`.noc.routing`; all of them produce minimal
//! (Manhattan) routes, so only *contention*, never distance, differs
//! between them. Oblivious policies pick one dimension order per message;
//! [`Adaptive`] instead decides *per hop*, stepping into the minimal
//! direction whose outgoing link frees earliest (deterministic tie-break
//! on the injection counter, so runs stay byte-reproducible).
//!
//! Per-hop latency prices the router pipeline: a head flit pays
//! `hop_cycles * router_pipeline_depth` NoC cycles per router
//! ([`NocCosts::router_latency`]), while serialization — link throughput —
//! is depth-independent. Depth 1 reproduces the pre-pipeline flat hop cost
//! exactly.

use std::fmt;

use pimsim_arch::model::{Cost, CostModel};
use pimsim_arch::{ArchConfig, Energy, RoutingPolicy};
use pimsim_event::{Clock, SimTime};

/// A unidirectional mesh link identified by `(from_router, to_router)`.
/// The memory port uses `to_router == MEM_NODE`.
pub const MEM_NODE: u16 = u16::MAX;

/// Outgoing ports per router: the four mesh directions plus the global
/// memory port (only ever used at router 0, but sized uniformly so the
/// dense index is a single multiply-add).
pub const PORTS: usize = 5;

const EAST: usize = 0;
const WEST: usize = 1;
const SOUTH: usize = 2;
const NORTH: usize = 3;
const MEM_PORT: usize = 4;

/// The dimension order one message's route walks the mesh in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DimOrder {
    /// Columns first (X), then rows (Y).
    XFirst,
    /// Rows first (Y), then columns (X).
    YFirst,
}

/// A routing policy: picks the dimension order of each message.
///
/// The built-in policies are stateless strategy objects; per-message
/// variation comes from the `msg_seq` argument (the fabric's injection
/// counter), which keeps the trait `Send + Sync` and the fabric
/// deterministic. Higher-fidelity policies (adaptive, credit-aware)
/// implement the same seam without touching the transfer fabric.
pub trait Routing: fmt::Debug + Send + Sync {
    /// Dimension order for the `msg_seq`-th message injected into the
    /// fabric, travelling `from -> to`. For adaptive policies this is the
    /// *tie-break* order, applied at hops where both minimal directions
    /// are equally congested.
    fn order(&self, from: u16, to: u16, msg_seq: u64) -> DimOrder;

    /// Short policy name (for reports and labels).
    fn name(&self) -> &'static str;

    /// `true` when the policy decides per hop from live link occupancy:
    /// the fabric then walks hop-by-hop (see [`Noc::adaptive_route`])
    /// instead of following a precomputed dimension-order [`Route`].
    fn is_adaptive(&self) -> bool {
        false
    }
}

/// X-then-Y dimension-order routing — the paper's mesh, the default.
#[derive(Debug, Clone, Copy, Default)]
pub struct Xy;

impl Routing for Xy {
    fn order(&self, _from: u16, _to: u16, _msg_seq: u64) -> DimOrder {
        DimOrder::XFirst
    }

    fn name(&self) -> &'static str {
        "xy"
    }
}

/// Y-then-X dimension-order routing.
#[derive(Debug, Clone, Copy, Default)]
pub struct Yx;

impl Routing for Yx {
    fn order(&self, _from: u16, _to: u16, _msg_seq: u64) -> DimOrder {
        DimOrder::YFirst
    }

    fn name(&self) -> &'static str {
        "yx"
    }
}

/// O1TURN-style routing: even-numbered messages go X-first, odd-numbered
/// Y-first, spreading load across the two minimal dimension orders.
#[derive(Debug, Clone, Copy, Default)]
pub struct XyYxAlternate;

impl Routing for XyYxAlternate {
    fn order(&self, _from: u16, _to: u16, msg_seq: u64) -> DimOrder {
        if msg_seq.is_multiple_of(2) {
            DimOrder::XFirst
        } else {
            DimOrder::YFirst
        }
    }

    fn name(&self) -> &'static str {
        "xy-yx"
    }
}

/// Congestion-aware minimal routing: at each hop the message steps into
/// the minimal direction (toward the destination) whose outgoing link
/// frees earliest. Ties — including the contention-free case where both
/// candidate links are idle — fall back to [`Routing::order`], which
/// alternates per message so tied traffic still spreads; the decision is a
/// pure function of fabric state and the injection counter, so runs stay
/// byte-reproducible.
#[derive(Debug, Clone, Copy, Default)]
pub struct Adaptive;

impl Routing for Adaptive {
    fn order(&self, from: u16, to: u16, msg_seq: u64) -> DimOrder {
        // Ties alternate exactly like O1TURN, so idle-fabric adaptive
        // traffic spreads the same way `xy-yx` does.
        XyYxAlternate.order(from, to, msg_seq)
    }

    fn name(&self) -> &'static str {
        "adaptive"
    }

    fn is_adaptive(&self) -> bool {
        true
    }
}

/// The built-in [`Routing`] instance for a configured [`RoutingPolicy`].
pub fn routing_for(policy: RoutingPolicy) -> &'static dyn Routing {
    match policy {
        RoutingPolicy::Xy => &Xy,
        RoutingPolicy::Yx => &Yx,
        RoutingPolicy::XyYxAlternate => &XyYxAlternate,
        RoutingPolicy::Adaptive => &Adaptive,
    }
}

/// An allocation-free walk of one message's minimal route: yields the
/// directed links `(from_router, to_router)` in traversal order.
#[derive(Debug, Clone)]
pub struct Route {
    cols: u16,
    cur: u16,
    to: u16,
    order: DimOrder,
}

impl Iterator for Route {
    type Item = (u16, u16);

    fn next(&mut self) -> Option<(u16, u16)> {
        if self.cur == self.to {
            return None;
        }
        let (cr, cc) = (self.cur / self.cols, self.cur % self.cols);
        let (tr, tc) = (self.to / self.cols, self.to % self.cols);
        let x_next = || {
            let next_c = if tc > cc { cc + 1 } else { cc - 1 };
            cr * self.cols + next_c
        };
        let y_next = || {
            let next_r = if tr > cr { cr + 1 } else { cr - 1 };
            next_r * self.cols + cc
        };
        let next = match self.order {
            DimOrder::XFirst => {
                if cc != tc {
                    x_next()
                } else {
                    y_next()
                }
            }
            DimOrder::YFirst => {
                if cr != tr {
                    y_next()
                } else {
                    x_next()
                }
            }
        };
        let link = (self.cur, next);
        self.cur = next;
        Some(link)
    }
}

/// An allocation-free, read-only walk of the route the next injected
/// message would take under an adaptive policy, given the fabric's current
/// occupancy. Produced by [`Noc::adaptive_route`].
#[derive(Debug, Clone)]
pub struct AdaptiveRoute<'a> {
    noc: &'a Noc,
    cur: u16,
    to: u16,
    msg_seq: u64,
}

impl Iterator for AdaptiveRoute<'_> {
    type Item = (u16, u16);

    fn next(&mut self) -> Option<(u16, u16)> {
        if self.cur == self.to {
            return None;
        }
        let next = self.noc.adaptive_step(self.cur, self.to, self.msg_seq);
        let link = (self.cur, next);
        self.cur = next;
        Some(link)
    }
}

/// Per-message cost constants, derived once from an [`ArchConfig`].
///
/// The transfer hot path used to rebuild a [`CostModel`] (and its clocks)
/// per message; this struct hoists everything a message needs into plain
/// fields. Each method reproduces the corresponding `CostModel` formula
/// term for term — `matches_cost_model` in the test module pins the
/// equivalence — so results are bit-identical, just cheaper to reach.
#[derive(Debug, Clone, Copy)]
pub struct NocCosts {
    hop: SimTime,
    router_latency: SimTime,
    noc_clock: Clock,
    core_clock: Clock,
    flit_bytes: u64,
    link_flits_per_cycle: f64,
    noc_pj_per_flit_hop: f64,
    local_mem_access_cycles: u64,
    local_mem_pj_per_elem: f64,
    global_mem_latency_ns: f64,
    global_mem_bw_elems_per_ns: f64,
    global_mem_pj_per_elem: f64,
    cols: u16,
}

impl NocCosts {
    /// Derives the constants from `cfg`.
    pub fn new(cfg: &ArchConfig) -> NocCosts {
        let model = CostModel::new(cfg);
        NocCosts {
            hop: model.noc_hop_latency(1),
            router_latency: model.noc_hop_latency(1) * cfg.noc.router_pipeline_depth as u64,
            noc_clock: model.noc_clock(),
            core_clock: model.core_clock(),
            flit_bytes: cfg.noc.flit_bytes as u64,
            link_flits_per_cycle: cfg.noc.link_flits_per_cycle,
            noc_pj_per_flit_hop: cfg.energy.noc_pj_per_flit_hop,
            local_mem_access_cycles: cfg.timing.local_mem_access_cycles as u64,
            local_mem_pj_per_elem: cfg.energy.local_mem_pj_per_elem,
            global_mem_latency_ns: cfg.timing.global_mem_latency_ns,
            global_mem_bw_elems_per_ns: cfg.timing.global_mem_bw_elems_per_ns,
            global_mem_pj_per_elem: cfg.energy.global_mem_pj_per_elem,
            cols: cfg.resources.core_cols,
        }
    }

    /// One-hop pipe latency (`hop_cycles` NoC cycles) of a single router
    /// pipeline stage.
    pub fn hop(&self) -> SimTime {
        self.hop
    }

    /// Head-flit latency of one full router traversal: `hop_cycles *
    /// router_pipeline_depth` NoC cycles. This — not [`NocCosts::hop`] —
    /// is what every link walk pays per hop; at depth 1 the two coincide,
    /// reproducing the pre-pipeline flat hop cost exactly.
    pub fn router_latency(&self) -> SimTime {
        self.router_latency
    }

    /// Flits needed to carry `elems` 32-bit elements (plus a header flit).
    pub fn flits_for_elems(&self, elems: u32) -> u64 {
        1 + (elems as u64 * 4).div_ceil(self.flit_bytes)
    }

    /// Time for one link to forward `flits` flits.
    pub fn serialization(&self, flits: u64) -> SimTime {
        let cycles = (flits as f64 / self.link_flits_per_cycle).ceil() as u64;
        self.noc_clock.cycles_to_time(cycles)
    }

    /// NoC energy for `flits` flits crossing `hops` hops.
    pub fn noc_energy(&self, flits: u64, hops: u32) -> Energy {
        Energy::from_pj(flits as f64 * hops as f64 * self.noc_pj_per_flit_hop)
    }

    /// Manhattan hop distance between two routers — the length of every
    /// minimal route, whatever the dimension order.
    pub fn hops(&self, a: u16, b: u16) -> u32 {
        let (ar, ac) = (a / self.cols, a % self.cols);
        let (br, bc) = (b / self.cols, b % self.cols);
        (ar.abs_diff(br) + ac.abs_diff(bc)) as u32
    }

    /// Cost of a same-core "transfer": a local scratchpad copy.
    pub fn local_copy(&self, elems: u32) -> Cost {
        let cycles = self.local_mem_access_cycles + elems as u64;
        Cost {
            time: self.core_clock.cycles_to_time(cycles),
            energy: Energy::from_pj(2.0 * elems as f64 * self.local_mem_pj_per_elem),
        }
    }

    /// Cost of a global-memory access of `elems` elements (latency +
    /// bandwidth serialization at the controller; NoC cost is separate).
    pub fn global_mem(&self, elems: u32) -> Cost {
        let time_ns = self.global_mem_latency_ns + elems as f64 / self.global_mem_bw_elems_per_ns;
        Cost {
            time: SimTime::from_ns_f64(time_ns),
            energy: Energy::from_pj(elems as f64 * self.global_mem_pj_per_elem),
        }
    }

    /// Dynamic energy of a core-to-core message: NoC wire/router energy
    /// along the (minimal) route, or the scratchpad-copy energy when
    /// `from == to`.
    pub fn message_energy(&self, from: u16, to: u16, elems: u32) -> Energy {
        if from == to {
            self.local_copy(elems).energy
        } else {
            self.noc_energy(self.flits_for_elems(elems), self.hops(from, to))
        }
    }
}

/// The head/tail progression of one packet walking links in sequence.
#[derive(Debug, Clone, Copy)]
struct Walk {
    head: SimTime,
    tail: SimTime,
}

/// Per-link and controller occupancy state.
#[derive(Debug, Clone)]
pub struct Noc {
    rows: u16,
    cols: u16,
    /// `free_at` per directed link, indexed `router * PORTS + port`.
    link_free: Vec<SimTime>,
    /// Global memory controller service queue.
    mem_free: SimTime,
    /// Messages injected so far (feeds per-message policy decisions).
    msg_seq: u64,
    routing: &'static dyn Routing,
}

impl Noc {
    /// Builds the link state for a `rows` × `cols` mesh with XY routing.
    ///
    /// # Panics
    ///
    /// Panics when either dimension is zero or the mesh has more routers
    /// than the 16-bit core-id space can address.
    pub fn new(rows: u16, cols: u16) -> Noc {
        Noc::with_routing(rows, cols, &Xy)
    }

    /// Builds the link state for a `rows` × `cols` mesh routed by
    /// `routing`.
    ///
    /// # Panics
    ///
    /// Panics when either dimension is zero or the mesh has more routers
    /// than the 16-bit core-id space can address.
    pub fn with_routing(rows: u16, cols: u16, routing: &'static dyn Routing) -> Noc {
        assert!(rows > 0 && cols > 0, "mesh must have at least one router");
        assert!(
            rows as u32 * cols as u32 <= MEM_NODE as u32,
            "mesh {rows}x{cols} exceeds the 16-bit core-id space"
        );
        Noc {
            rows,
            cols,
            link_free: vec![SimTime::ZERO; rows as usize * cols as usize * PORTS],
            mem_free: SimTime::ZERO,
            msg_seq: 0,
            routing,
        }
    }

    /// Builds the NoC for a (validated) architecture configuration,
    /// including its configured routing policy.
    pub fn for_arch(cfg: &ArchConfig) -> Noc {
        Noc::with_routing(
            cfg.resources.core_rows,
            cfg.resources.core_cols,
            routing_for(cfg.noc.routing),
        )
    }

    /// Routers in the mesh.
    fn routers(&self) -> u32 {
        self.rows as u32 * self.cols as u32
    }

    /// Debug-asserts that `core` addresses a router inside the mesh. Out
    /// of range ids would otherwise index outside the dense link table.
    fn check_core(&self, core: u16) {
        debug_assert!(
            (core as u32) < self.routers(),
            "core {core} outside the {}x{} mesh",
            self.rows,
            self.cols
        );
    }

    /// The dense index of the directed link `from -> to`. The two routers
    /// are always mesh neighbours (or `to == MEM_NODE`), so the outgoing
    /// port is recoverable from their difference.
    fn link_index(&self, from: u16, to: u16) -> usize {
        let port = if to == MEM_NODE {
            MEM_PORT
        } else if to as u32 == from as u32 + 1 {
            EAST
        } else if to as u32 + 1 == from as u32 {
            WEST
        } else if to as u32 == from as u32 + self.cols as u32 {
            SOUTH
        } else {
            debug_assert!(to as u32 + self.cols as u32 == from as u32, "not a link");
            NORTH
        };
        from as usize * PORTS + port
    }

    /// The occupancy (`free_at`) of the directed link `from -> to`.
    pub fn link_free(&self, from: u16, to: u16) -> SimTime {
        self.link_free[self.link_index(from, to)]
    }

    /// The minimal route between two routers under `order`, as an
    /// allocation-free iterator of directed links.
    pub fn route(&self, from: u16, to: u16, order: DimOrder) -> Route {
        self.check_core(from);
        self.check_core(to);
        Route {
            cols: self.cols,
            cur: from,
            to,
            order,
        }
    }

    /// The injection counter for the next message, advancing it.
    fn next_msg(&mut self) -> u64 {
        let seq = self.msg_seq;
        self.msg_seq += 1;
        seq
    }

    /// Sends a core-to-core message; returns its delivery (completion) time.
    ///
    /// A self-message (`from == to`) never touches the mesh: it is a local
    /// scratchpad copy and costs [`NocCosts::local_copy`], not zero —
    /// same-core rendezvous still has to move the payload.
    pub fn message(
        &mut self,
        from: u16,
        to: u16,
        elems: u32,
        start: SimTime,
        costs: &NocCosts,
    ) -> SimTime {
        if from == to {
            self.check_core(from);
            return start + costs.local_copy(elems).time;
        }
        let flits = costs.flits_for_elems(elems);
        let ser = costs.serialization(flits);
        let seq = self.next_msg();
        let mut walk = Walk {
            head: start,
            tail: start,
        };
        self.walk(from, to, seq, &mut walk, costs.router_latency(), ser);
        walk.tail
    }

    /// Walks a packet `from -> to` under the active policy, reserving each
    /// link in turn: a fixed dimension-order [`Route`] for oblivious
    /// policies, a hop-by-hop congestion-guided walk for adaptive ones.
    fn walk(
        &mut self,
        from: u16,
        to: u16,
        msg_seq: u64,
        walk: &mut Walk,
        hop: SimTime,
        ser: SimTime,
    ) {
        if self.routing.is_adaptive() {
            // A minimal walk visits distinct routers, so the links this
            // message has already reserved are never candidates again:
            // each step sees exactly the occupancy `adaptive_route` would.
            let mut cur = from;
            while cur != to {
                let next = self.adaptive_step(cur, to, msg_seq);
                self.reserve(cur, next, walk, hop, ser);
                cur = next;
            }
        } else {
            let order = self.routing.order(from, to, msg_seq);
            let route = self.route(from, to, order);
            self.walk_route(route, walk, hop, ser);
        }
    }

    /// Reserves the directed link `a -> b` for `walk`'s head/tail flits.
    fn reserve(&mut self, a: u16, b: u16, walk: &mut Walk, hop: SimTime, ser: SimTime) {
        let idx = self.link_index(a, b);
        walk.head = walk.head.max(self.link_free[idx]) + hop;
        walk.tail = walk.head + ser;
        self.link_free[idx] = walk.tail;
    }

    /// Walks a packet along `route`, reserving each link in turn.
    fn walk_route(&mut self, route: Route, walk: &mut Walk, hop: SimTime, ser: SimTime) {
        for (a, b) in route {
            self.reserve(a, b, walk, hop, ser);
        }
    }

    /// The router an adaptively routed message at `cur` steps to next on
    /// its way to `to`: of the (at most two) minimal directions, the one
    /// whose outgoing link frees earliest; ties fall back to the policy's
    /// per-message dimension order.
    fn adaptive_step(&self, cur: u16, to: u16, msg_seq: u64) -> u16 {
        let (cr, cc) = (cur / self.cols, cur % self.cols);
        let (tr, tc) = (to / self.cols, to % self.cols);
        let x_next = (cc != tc).then(|| {
            let next_c = if tc > cc { cc + 1 } else { cc - 1 };
            cr * self.cols + next_c
        });
        let y_next = (cr != tr).then(|| {
            let next_r = if tr > cr { cr + 1 } else { cr - 1 };
            next_r * self.cols + cc
        });
        match (x_next, y_next) {
            (Some(x), None) => x,
            (None, Some(y)) => y,
            (Some(x), Some(y)) => {
                let x_free = self.link_free[self.link_index(cur, x)];
                let y_free = self.link_free[self.link_index(cur, y)];
                if x_free < y_free {
                    x
                } else if y_free < x_free {
                    y
                } else {
                    match self.routing.order(cur, to, msg_seq) {
                        DimOrder::XFirst => x,
                        DimOrder::YFirst => y,
                    }
                }
            }
            (None, None) => unreachable!("walk loop stops at the destination"),
        }
    }

    /// The route the *next injected* message would take from `from` to
    /// `to` under an adaptive policy, given the fabric's current link
    /// occupancy — a read-only hop-by-hop view for tests and diagnostics.
    /// Because a minimal walk never revisits a router, this is exactly the
    /// path [`Noc::message`] reserves when it injects that message.
    pub fn adaptive_route(&self, from: u16, to: u16) -> AdaptiveRoute<'_> {
        self.check_core(from);
        self.check_core(to);
        AdaptiveRoute {
            noc: self,
            cur: from,
            to,
            msg_seq: self.msg_seq,
        }
    }

    /// A global-memory access from `core`: ride the mesh to corner (0,0),
    /// cross the memory port, queue at the controller, pay DRAM latency +
    /// bandwidth. Returns the completion time.
    pub fn memory_access(
        &mut self,
        core: u16,
        elems: u32,
        start: SimTime,
        costs: &NocCosts,
    ) -> SimTime {
        self.check_core(core);
        let flits = costs.flits_for_elems(elems);
        let ser = costs.serialization(flits);
        let seq = self.next_msg();
        let mut walk = Walk {
            head: start,
            tail: start,
        };
        self.walk(core, 0, seq, &mut walk, costs.router_latency(), ser);
        // The memory port continues the same head progression.
        self.reserve(0, MEM_NODE, &mut walk, costs.router_latency(), ser);
        let arrived = walk.tail;
        let service_start = arrived.max(self.mem_free);
        let done = service_start + costs.global_mem(elems).time;
        self.mem_free = done;
        done
    }

    /// Number of mesh rows.
    pub fn rows(&self) -> u16 {
        self.rows
    }

    /// Number of mesh columns.
    pub fn cols(&self) -> u16 {
        self.cols
    }

    /// The active routing policy.
    pub fn routing(&self) -> &'static dyn Routing {
        self.routing
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn costs(cfg: &ArchConfig) -> NocCosts {
        NocCosts::new(cfg)
    }

    #[test]
    fn xy_route_shape() {
        let noc = Noc::new(4, 4);
        // core 1 (0,1) -> core 14 (3,2): x to col 2, then y down.
        let r: Vec<_> = noc.route(1, 14, DimOrder::XFirst).collect();
        assert_eq!(r, vec![(1, 2), (2, 6), (6, 10), (10, 14)]);
        assert_eq!(noc.route(5, 5, DimOrder::XFirst).count(), 0);
        assert_eq!(noc.rows(), 4);
        assert_eq!(noc.cols(), 4);
        assert_eq!(noc.routing().name(), "xy");
    }

    #[test]
    fn yx_route_shape() {
        let noc = Noc::new(4, 4);
        // core 1 (0,1) -> core 14 (3,2): y down to row 3 first, then x.
        let r: Vec<_> = noc.route(1, 14, DimOrder::YFirst).collect();
        assert_eq!(r, vec![(1, 5), (5, 9), (9, 13), (13, 14)]);
    }

    #[test]
    fn alternate_policy_flips_order_per_message() {
        let p = XyYxAlternate;
        assert_eq!(p.order(0, 15, 0), DimOrder::XFirst);
        assert_eq!(p.order(0, 15, 1), DimOrder::YFirst);
        assert_eq!(p.order(0, 15, 2), DimOrder::XFirst);
        assert_eq!(Xy.order(0, 15, 1), DimOrder::XFirst);
        assert_eq!(Yx.order(0, 15, 2), DimOrder::YFirst);
    }

    #[test]
    fn routing_for_maps_every_policy() {
        use pimsim_arch::RoutingPolicy;
        assert_eq!(routing_for(RoutingPolicy::Xy).name(), "xy");
        assert_eq!(routing_for(RoutingPolicy::Yx).name(), "yx");
        assert_eq!(routing_for(RoutingPolicy::XyYxAlternate).name(), "xy-yx");
        assert_eq!(routing_for(RoutingPolicy::Adaptive).name(), "adaptive");
        assert!(routing_for(RoutingPolicy::Adaptive).is_adaptive());
        assert!(!routing_for(RoutingPolicy::Xy).is_adaptive());
    }

    #[test]
    fn adaptive_steps_around_congestion() {
        let cfg = ArchConfig::paper_default();
        let c = costs(&cfg);
        let mut noc = Noc::with_routing(2, 2, &Adaptive);
        // Occupy the eastward link 0 -> 1; the next message 0 -> 3 must
        // open with the idle southward link 0 -> 2 instead.
        noc.message(0, 1, 1024, SimTime::ZERO, &c);
        assert!(!noc.link_free(0, 1).is_zero());
        let path: Vec<_> = noc.adaptive_route(0, 3).collect();
        assert_eq!(path, vec![(0, 2), (2, 3)]);
        // And the actual injection reserves exactly that read-only path.
        noc.message(0, 3, 64, SimTime::ZERO, &c);
        assert!(!noc.link_free(0, 2).is_zero());
        assert!(!noc.link_free(2, 3).is_zero());
    }

    #[test]
    fn adaptive_tie_breaks_on_the_injection_counter() {
        let noc = Noc::with_routing(2, 2, &Adaptive);
        // Idle fabric: both minimal directions tie, so the tie-break
        // alternates with the injection counter — deterministically.
        let even: Vec<_> = noc.adaptive_route(0, 3).collect();
        assert_eq!(even, vec![(0, 1), (1, 3)], "msg 0 ties toward X first");
        let mut noc = noc;
        noc.msg_seq = 1;
        let odd: Vec<_> = noc.adaptive_route(0, 3).collect();
        assert_eq!(odd, vec![(0, 2), (2, 3)], "msg 1 ties toward Y first");
    }

    #[test]
    fn router_pipeline_depth_scales_head_latency_only() {
        let cfg = ArchConfig::paper_default();
        let deep = cfg.clone().with_router_pipeline_depth(3);
        let c1 = NocCosts::new(&cfg);
        let c3 = NocCosts::new(&deep);
        // Serialization (link throughput) is depth-independent; only the
        // per-hop head latency deepens.
        assert_eq!(c1.serialization(17), c3.serialization(17));
        assert_eq!(c1.router_latency(), c1.hop());
        assert_eq!(c3.router_latency(), c3.hop() * 3);
        // A one-hop message pays exactly depth * hop + serialization.
        for (costs, depth) in [(c1, 1u64), (c3, 3u64)] {
            let mut noc = Noc::new(2, 2);
            let done = noc.message(0, 1, 64, SimTime::ZERO, &costs);
            let expect = costs.hop() * depth + costs.serialization(costs.flits_for_elems(64));
            assert_eq!(done, SimTime::ZERO + expect);
        }
    }

    #[test]
    #[should_panic(expected = "at least one router")]
    fn zero_sized_mesh_is_rejected() {
        let _ = Noc::new(0, 4);
    }

    #[test]
    #[should_panic(expected = "outside the 2x2 mesh")]
    fn out_of_mesh_core_is_rejected() {
        // Regression: ids >= rows*cols used to silently fabricate
        // out-of-mesh links instead of failing.
        let noc = Noc::new(2, 2);
        let _ = noc.route(0, 4, DimOrder::XFirst);
    }

    #[test]
    #[should_panic(expected = "outside the")]
    fn out_of_mesh_memory_access_is_rejected() {
        let cfg = ArchConfig::paper_default();
        let c = costs(&cfg);
        let mut noc = Noc::new(2, 2);
        let _ = noc.memory_access(9, 64, SimTime::ZERO, &c);
    }

    #[test]
    fn for_arch_matches_config_mesh_and_policy() {
        let mut cfg = ArchConfig::small_test();
        cfg.noc.routing = pimsim_arch::RoutingPolicy::Yx;
        let noc = Noc::for_arch(&cfg);
        assert_eq!(noc.rows(), cfg.resources.core_rows);
        assert_eq!(noc.cols(), cfg.resources.core_cols);
        assert_eq!(noc.routing().name(), "yx");
    }

    #[test]
    fn self_message_charges_local_copy() {
        // Pinned choice: same-core rendezvous is NOT free — it pays the
        // scratchpad-copy cost from the shared cost model.
        let cfg = ArchConfig::paper_default();
        let c = costs(&cfg);
        let mut noc = Noc::new(8, 8);
        let start = SimTime::from_ns(5);
        let done = noc.message(5, 5, 256, start, &c);
        assert_eq!(done, start + c.local_copy(256).time);
        assert!(done > start);
        // And it never reserves mesh links.
        assert!(noc.link_free.iter().all(|t| t.is_zero()));
    }

    #[test]
    fn farther_is_slower() {
        let cfg = ArchConfig::paper_default();
        let c = costs(&cfg);
        let mut noc = Noc::new(8, 8);
        let near = noc.message(0, 1, 64, SimTime::ZERO, &c);
        let mut noc2 = Noc::new(8, 8);
        let far = noc2.message(0, 63, 64, SimTime::ZERO, &c);
        assert!(far > near);
    }

    #[test]
    fn contention_serializes_on_shared_links() {
        let cfg = ArchConfig::paper_default();
        let c = costs(&cfg);
        let mut noc = Noc::new(8, 8);
        let first = noc.message(0, 7, 1024, SimTime::ZERO, &c);
        // Same path immediately afterwards: must wait behind the first.
        let second = noc.message(0, 7, 1024, SimTime::ZERO, &c);
        assert!(second > first);
        // A disjoint path is unaffected.
        let mut fresh = Noc::new(8, 8);
        let disjoint_fresh = fresh.message(56, 63, 1024, SimTime::ZERO, &c);
        let disjoint_after = noc.message(56, 63, 1024, SimTime::ZERO, &c);
        assert_eq!(disjoint_fresh, disjoint_after);
    }

    #[test]
    fn memory_controller_queues() {
        let cfg = ArchConfig::paper_default();
        let c = costs(&cfg);
        let mut noc = Noc::new(8, 8);
        let a = noc.memory_access(0, 4096, SimTime::ZERO, &c);
        let b = noc.memory_access(63, 4096, SimTime::ZERO, &c);
        assert!(b > a, "controller should serialize concurrent streams");
        assert!(!noc.link_free(0, MEM_NODE).is_zero(), "mem port reserved");
    }

    #[test]
    fn noc_costs_match_the_cost_model() {
        // NocCosts is a hot-path cache of CostModel, not a second model:
        // every derived quantity must agree exactly.
        for cfg in [ArchConfig::paper_default(), ArchConfig::small_test()] {
            let m = CostModel::new(&cfg);
            let c = NocCosts::new(&cfg);
            assert_eq!(c.hop(), m.noc_hop_latency(1));
            // At the default depth 1 the full router traversal is the
            // plain hop cost, so the fabric cannot move a picosecond.
            assert_eq!(c.router_latency(), m.noc_hop_latency(1));
            for elems in [0u32, 1, 8, 9, 64, 1000, 4096] {
                assert_eq!(c.flits_for_elems(elems), m.flits_for_elems(elems));
                assert_eq!(c.local_copy(elems), m.local_copy_cost(elems));
                assert_eq!(c.global_mem(elems), m.global_mem_cost(elems));
            }
            for flits in [1u64, 2, 17, 129] {
                assert_eq!(c.serialization(flits), m.link_serialization(flits));
                assert_eq!(c.noc_energy(flits, 3), m.noc_energy(flits, 3));
            }
            for (a, b) in [(0u16, 0u16), (0, 9), (5, 5), (0, 8)] {
                assert_eq!(c.hops(a, b), cfg.resources.mesh_hops(a, b));
                assert_eq!(c.message_energy(a, b, 64), m.message_energy(a, b, 64));
            }
        }
    }

    #[test]
    fn dense_occupancy_tracks_every_directed_link() {
        // Bidirectional traffic on one edge occupies two distinct slots.
        let cfg = ArchConfig::paper_default();
        let c = costs(&cfg);
        let mut noc = Noc::new(2, 2);
        noc.message(0, 1, 64, SimTime::ZERO, &c);
        noc.message(1, 0, 64, SimTime::ZERO, &c);
        assert!(!noc.link_free(0, 1).is_zero());
        assert!(!noc.link_free(1, 0).is_zero());
        assert_ne!(noc.link_index(0, 1), noc.link_index(1, 0));
    }
}

//! The compiled scheduler: a Placer-style fast path for static regions.
//!
//! Event-driven simulation pays a full hazard scan, cost lookup, and
//! scheduling decision per event, even though most of a compiled
//! network's per-core trace is straight-line code whose timing is fully
//! determined at the first visit. This module splits each core's program
//! into *contention-free regions* (cut at transfers and branches),
//! compiles each region once by recording a scratch run of the real
//! machine code ([`region`]), and thereafter replays the recorded
//! schedule ([`replay`]) — falling back to the live event kernel at
//! region boundaries, where cores interact through the NoC or shared
//! memory.
//!
//! Because compiled slots are kernel events at the same `(time, seq)`
//! positions as the events they replace, applying the exact mutations
//! those events performed (down to `f64` addend order), a compiled run's
//! report is byte-identical to the event engine's. Regions are memoized
//! by window content, registers, and group shapes, so mirrored cores
//! compile once and replay everywhere — and a [`ScheduleCache`] carries
//! the memo across runs, so repeated simulation of the same program
//! (benchmark loops, batched sweeps) pays each region's compile cost
//! once, Placer-style, instead of once per run.

mod region;
mod replay;

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

use pimsim_arch::ArchConfig;
use pimsim_event::{Kernel, SimTime};

use crate::machine::{Engine, EngineInput, EngineOutput, MachineEvent};
use region::{Region, RegionKey};
use replay::HybridWorld;

/// The compiled engine's region memo: `None` entries record failed
/// compiles so those sites fall back natively without re-running the
/// scratch machine.
pub(crate) type RegionMemo = HashMap<RegionKey, Option<Rc<Region>>>;

/// A compiled-region store that outlives a single run.
///
/// Without one, the [`CompiledEngine`] memoizes regions per run: a
/// straight-line program compiles every region exactly once and then
/// never reuses it, so the scratch-recording cost is pure overhead. A
/// cache handed to [`Simulator::with_schedule_cache`](crate::Simulator::with_schedule_cache)
/// persists the memo across runs of the same configuration — the first
/// run compiles, every later run replays.
///
/// Region schedules depend on the architecture, so the cache binds to
/// the [`ArchConfig`] of its first run and is bypassed (not poisoned,
/// not shared) for runs under any other config. Runs with a custom
/// [`TimingModel`](crate::TimingModel) bypass caches entirely — timing
/// models have no comparable identity, and replaying a schedule recorded
/// under different costs would silently corrupt results.
#[derive(Default)]
pub struct ScheduleCache {
    state: RefCell<Option<CacheState>>,
}

struct CacheState {
    arch: ArchConfig,
    memo: RegionMemo,
}

impl ScheduleCache {
    /// Takes the memo out for a run under `arch`. Binds the cache on
    /// first use; returns `None` (run with a fresh private memo) when the
    /// cache is bound to a different config.
    pub(crate) fn checkout(&self, arch: &ArchConfig) -> Option<RegionMemo> {
        let mut state = self.state.borrow_mut();
        match state.as_mut() {
            None => {
                *state = Some(CacheState {
                    arch: arch.clone(),
                    memo: RegionMemo::new(),
                });
                Some(RegionMemo::new())
            }
            Some(s) if s.arch == *arch => Some(std::mem::take(&mut s.memo)),
            Some(_) => None,
        }
    }

    /// Returns a checked-out memo after the run.
    pub(crate) fn checkin(&self, memo: RegionMemo) {
        if let Some(s) = self.state.borrow_mut().as_mut() {
            s.memo = memo;
        }
    }

    /// Number of memoized region entries (compiled plus failed-compile
    /// markers) — observability for tests and benches.
    pub fn len(&self) -> usize {
        self.state.borrow().as_ref().map_or(0, |s| s.memo.len())
    }

    /// `true` when nothing has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl fmt::Debug for ScheduleCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ScheduleCache")
            .field("regions", &self.len())
            .finish()
    }
}

/// The compiled engine: pre-places per-core schedules for static regions
/// and falls back to live event handling at region boundaries. Output is
/// byte-identical to [`EventEngine`](crate::machine::EventEngine);
/// select it when simulating contention-light workloads repeatedly.
#[derive(Debug, Clone, Copy, Default)]
pub struct CompiledEngine;

impl Engine for CompiledEngine {
    fn name(&self) -> &'static str {
        "compiled"
    }

    fn drive<'a>(&self, input: EngineInput<'a>) -> EngineOutput<'a> {
        let EngineInput {
            machine,
            horizon,
            cache,
        } = input;
        let checked_out = cache.and_then(|c| c.checkout(machine.cfg));
        let from_cache = checked_out.is_some();
        let memo = checked_out.unwrap_or_default();
        let n_cores = machine.cores.len();
        let mut kernel = Kernel::new(HybridWorld::new(machine, memo));
        for c in 0..n_cores {
            if !kernel.world().machine().cores[c].halted {
                kernel.schedule_at(SimTime::ZERO, MachineEvent::Advance { core: c });
            }
        }
        let result = kernel.run_until(horizon);
        let events = kernel.stats().executed;
        let (machine, schedule, memo) = kernel.into_world().into_parts();
        if from_cache {
            if let Some(cache) = cache {
                cache.checkin(memo);
            }
        }
        EngineOutput {
            machine,
            result,
            events,
            schedule,
        }
    }
}

//! Region compilation: run the real machine code on a single-core scratch
//! machine and record everything each event did.
//!
//! A *region* is a window of straight-line instructions on one core —
//! cut at the first transfer, branch, or jump — whose timing depends only
//! on the register file, the window itself, and per-run constants. To
//! compile one, we build a scratch [`Machine`] holding just that core
//! (program truncated to the window, program counter rebased to zero,
//! clock rebased to zero) and drive it with a real event kernel under a
//! [`RecordingWorld`] wrapper. Because the scratch runs the *same*
//! handler code as a live run, the recorded schedule cannot drift from
//! the event engine: per fired event we capture the telemetry mutations
//! (exact `f64` addends, in order — see [`Delta`]), the core-stats
//! delta, and the relative times of the events it scheduled.
//!
//! For a window truncated at a transfer, the scratch eventually
//! fetch-fails at the window end where the real machine would dispatch
//! the transfer. That event is the region *boundary*: we keep the
//! snapshot of the core taken just before it and stop. At replay the
//! boundary slot rebases that snapshot onto the live core and hands the
//! original event to the live handlers, which dispatch the transfer for
//! real. Events the scratch had scheduled but not yet fired at the
//! boundary become *pass-through* slots, delegated live in the kernel's
//! `(time, seq)` order — reconstructed here without kernel queue access
//! by replaying the push log through a min-heap.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::rc::Rc;

use pimsim_event::{Kernel, RunResult, SimTime, World};
use pimsim_isa::{GroupConfig, InstrClass, Instruction};

use crate::exec::Memory;
use crate::machine::rob::{Core, State};
use crate::machine::transfer::TransferFabric;
use crate::machine::{Ctx, Delta, Machine, MachineEvent, Telemetry};
use crate::noc::{Noc, NocCosts};
use crate::resolve::Resolved;
use crate::stats::CoreStats;

/// First index at or after `pc` that ends a contention-free window: a
/// transfer (NoC / shared-memory traffic) or a branch/jump (which would
/// make the window position-dependent). Everything before it — scalar
/// arithmetic, vector/matrix work, `halt` — is region material.
pub(crate) fn window_end(instrs: &[Instruction], pc: usize) -> usize {
    let mut end = pc;
    while let Some(i) = instrs.get(end) {
        if i.class() == InstrClass::Transfer
            || matches!(i, Instruction::Branch { .. } | Instruction::Jump { .. })
        {
            break;
        }
        end += 1;
    }
    end
}

/// Memo key: everything a region's schedule can depend on that is not a
/// per-run constant (ROB size, dispatch pacing, the structure-hazard flag
/// and the timing model are fixed for a whole run and so stay out).
/// Mirrored cores — same window, registers and group shapes — share one
/// compiled region through this key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct RegionKey {
    instrs: Vec<Instruction>,
    tags: Vec<u16>,
    regs: [i32; 32],
    /// `(id, input_len, output_len, xbar_ids)` per group — the fields the
    /// timing and hazard logic read (weights only matter functionally).
    groups: Vec<(u16, u32, u32, Vec<u32>)>,
    /// Whether the window ends at a transfer/branch (boundary region) or
    /// at program end (terminal region). Identical windows can differ.
    truncated: bool,
}

impl RegionKey {
    pub(crate) fn new(core: &Core, pc: usize, end: usize) -> RegionKey {
        RegionKey {
            instrs: core.instrs[pc..end].to_vec(),
            tags: (pc..end)
                .map(|i| core.tags.get(i).copied().unwrap_or(0))
                .collect(),
            regs: core.regs,
            groups: core
                .groups
                .iter()
                .map(|g| (g.id.0, g.input_len, g.output_len, g.xbar_ids.clone()))
                .collect(),
            truncated: end < core.instrs.len(),
        }
    }
}

/// One in-flight ROB entry, snapshotted in scratch-relative terms.
#[derive(Debug)]
pub(crate) struct EntrySnap {
    pub(crate) rel_seq: u64,
    pub(crate) res: Resolved,
    pub(crate) class: InstrClass,
    pub(crate) tag: u16,
    pub(crate) state: State,
    /// Scratch-relative issue time; meaningless while `Waiting`.
    pub(crate) issue_at: SimTime,
}

/// Full core state in scratch-relative terms (pc relative to the window
/// start, times relative to region entry, seqs relative to entry seq).
#[derive(Debug)]
pub(crate) struct CoreSnap {
    pub(crate) pc: u32,
    pub(crate) regs: [i32; 32],
    pub(crate) halted: bool,
    pub(crate) next_dispatch: SimTime,
    pub(crate) advance_pending: bool,
    pub(crate) vector_busy: bool,
    pub(crate) busy_xbars: Vec<u32>,
    pub(crate) seq_next: u64,
    pub(crate) rob: Vec<EntrySnap>,
}

fn snapshot(core: &Core) -> CoreSnap {
    CoreSnap {
        pc: core.pc,
        regs: core.regs,
        halted: core.halted,
        next_dispatch: core.next_dispatch,
        advance_pending: core.advance_pending,
        vector_busy: core.vector_busy,
        busy_xbars: core.busy_xbars.clone(),
        seq_next: core.seq_next,
        rob: core
            .rob
            .iter()
            .map(|e| EntrySnap {
                rel_seq: e.seq,
                res: e.res.clone(),
                class: e.class,
                tag: e.tag,
                state: e.state,
                issue_at: e.issue_at,
            })
            .collect(),
    }
}

/// The shape of a machine event inside a region, with seqs rebased.
#[derive(Debug, Clone, Copy)]
pub(crate) enum PassKind {
    Advance,
    Complete { rel_seq: u64 },
}

fn pass_kind(ev: &MachineEvent) -> PassKind {
    match ev {
        MachineEvent::Advance { .. } => PassKind::Advance,
        MachineEvent::Complete { seq, .. } => PassKind::Complete { rel_seq: *seq },
        other => unreachable!("{other:?} cannot occur inside a compiled region"),
    }
}

/// What one pre-placed slot does when its kernel event fires.
#[derive(Debug)]
pub(crate) enum SlotKind {
    /// Replay a recorded event: apply its telemetry/stats deltas and
    /// re-schedule the events it scheduled (as further slots).
    Placed {
        deltas: Vec<Delta>,
        stats: CoreStats,
        schedules: Vec<SimTime>,
    },
    /// The region boundary: rebase the pre-event snapshot onto the live
    /// core, then hand the original event to the live handlers (which
    /// will dispatch the transfer the window was cut at).
    Boundary { snap: CoreSnap, ev: PassKind },
    /// An event scheduled before the boundary that fires after it:
    /// delegate to the live handlers against the materialized core.
    Pass { ev: PassKind },
}

/// One schedule slot: what to do at `rel_time` after region entry.
#[derive(Debug)]
pub(crate) struct Slot {
    pub(crate) rel_time: SimTime,
    pub(crate) kind: SlotKind,
}

/// A compiled region: the slot list in kernel firing order, plus — for
/// regions that run to program end — the final core state to materialize
/// after the last slot.
#[derive(Debug)]
pub(crate) struct Region {
    pub(crate) slots: Vec<Slot>,
    pub(crate) terminal: Option<CoreSnap>,
}

/// Everything one fired scratch event did.
#[derive(Debug)]
struct RecEvent {
    rel_time: SimTime,
    kind: PassKind,
    deltas: Vec<Delta>,
    stats: CoreStats,
    schedules: Vec<(SimTime, PassKind)>,
    /// Pre-event core snapshot, kept only for the boundary event.
    snap: Option<CoreSnap>,
}

/// Wraps the scratch machine and records what every event does.
struct RecordingWorld<'a> {
    machine: Machine<'a>,
    window_len: u32,
    truncated: bool,
    events: Vec<RecEvent>,
    boundary: Option<usize>,
}

impl World for RecordingWorld<'_> {
    type Event = MachineEvent;

    fn handle(&mut self, ev: MachineEvent, ctx: &mut Ctx) {
        debug_assert!(
            self.boundary.is_none(),
            "no events fire past the boundary stop"
        );
        let kind = pass_kind(&ev);
        let snap = snapshot(&self.machine.cores[0]);
        let before = self.machine.cores[0].stats;
        self.machine.handle(ev, ctx);
        let after = self.machine.cores[0].stats;
        let stats = CoreStats {
            dispatched: after.dispatched - before.dispatched,
            matrix_busy: after.matrix_busy - before.matrix_busy,
            vector_busy: after.vector_busy - before.vector_busy,
            transfer_busy: after.transfer_busy - before.transfer_busy,
        };
        let schedules = ctx
            .scheduled()
            .iter()
            .map(|(t, e)| (*t, pass_kind(e)))
            .collect();
        let deltas = self.machine.telemetry.take_recorded();
        let core = &self.machine.cores[0];
        // The frontend fetch-failed exactly at the window cut: the real
        // program has the transfer (or branch) here instead.
        let is_boundary = self.truncated && core.halted && core.pc == self.window_len;
        self.events.push(RecEvent {
            rel_time: ctx.now(),
            kind,
            deltas,
            stats,
            schedules,
            snap: is_boundary.then_some(snap),
        });
        if is_boundary {
            self.boundary = Some(self.events.len() - 1);
            ctx.stop();
        }
    }
}

/// Compiles the region `instrs[pc..end)` of `machine.cores[core]` by
/// recording a scratch run. Returns `None` when the scratch run errors —
/// the live engine then executes the site natively and reproduces the
/// error with its real context.
pub(crate) fn compile_region(
    machine: &Machine<'_>,
    core: usize,
    pc: usize,
    end: usize,
) -> Option<Rc<Region>> {
    let real = &machine.cores[core];
    let truncated = end < real.instrs.len();
    let window_len = (end - pc) as u32;
    // Weights only matter functionally; the scratch never runs payloads.
    let groups: Vec<GroupConfig> = real
        .groups
        .iter()
        .map(|g| GroupConfig {
            weights: None,
            ..g.clone()
        })
        .collect();
    let scratch_core = Core {
        pc: 0,
        regs: real.regs,
        halted: false,
        rob: VecDeque::new(),
        rob_size: real.rob_size,
        // Region entry requires next_dispatch <= now, and dispatch times
        // clamp to max(next_dispatch, now): relative to entry both are
        // exactly zero.
        next_dispatch: SimTime::ZERO,
        advance_pending: false,
        vector_busy: false,
        busy_xbars: Vec::new(),
        seq_next: 0,
        instrs: real.instrs[pc..end].to_vec(),
        groups,
        tags: (pc..end)
            .map(|i| real.tags.get(i).copied().unwrap_or(0))
            .collect(),
        mem: Memory::default(),
        stats: CoreStats::default(),
    };
    let mut telemetry = Telemetry::new(false);
    telemetry.recorder = Some(Vec::new());
    let scratch = Machine {
        cfg: machine.cfg,
        timing: machine.timing,
        cores: vec![scratch_core],
        noc: Noc::for_arch(machine.cfg),
        costs: NocCosts::new(machine.cfg),
        gmem: Memory::default(),
        fabric: TransferFabric::new(machine.cfg.noc.virtual_channels),
        functional: false,
        dispatch_interval: machine.dispatch_interval,
        telemetry,
        error: None,
        finish_time: SimTime::ZERO,
        hybrid: false,
        deferred_advance: None,
    };
    let mut kernel = Kernel::new(RecordingWorld {
        machine: scratch,
        window_len,
        truncated,
        events: Vec::new(),
        boundary: None,
    });
    kernel.schedule_at(SimTime::ZERO, MachineEvent::Advance { core: 0 });
    // Run to exhaustion (or the boundary stop) with no horizon: a
    // horizon-truncated compile would poison the memo for later entries
    // that do have time left. Slots past the real horizon simply never
    // fire, exactly like the events they replace.
    let result = kernel.run();
    let mut rec = kernel.into_world();
    if rec.machine.error.is_some() {
        return None;
    }
    debug_assert!(matches!(result, RunResult::Exhausted | RunResult::Stopped));

    // Replay the push log through a min-heap to reconstruct the kernel's
    // (time, seq) firing order: whatever survives the fired prefix was
    // still queued at the boundary and becomes a pass-through slot.
    let boundary = rec.boundary;
    if boundary == Some(0) {
        // The entry event itself hit the boundary (e.g. a zero-interval
        // frontend ran the whole window in one event): nothing was
        // pre-placed, so the region is worthless — and entry sites assume
        // slot 0 is a placed slot. Fall back natively.
        return None;
    }
    let mut heap: BinaryHeap<Reverse<(SimTime, usize)>> = BinaryHeap::new();
    let mut pushes: Vec<(PassKind, Option<usize>)> = vec![(PassKind::Advance, None)];
    heap.push(Reverse((SimTime::ZERO, 0)));
    for (i, ev) in rec.events.iter().enumerate() {
        let popped = heap.pop().expect("every fired event was pushed");
        debug_assert_eq!(popped.0 .0, ev.rel_time);
        for (at, k) in &ev.schedules {
            pushes.push((*k, Some(i)));
            heap.push(Reverse((*at, pushes.len() - 1)));
        }
    }

    let mut slots: Vec<Slot> = Vec::with_capacity(rec.events.len() + heap.len());
    for (i, ev) in rec.events.drain(..).enumerate() {
        let kind = if boundary == Some(i) {
            // The boundary's own recorded effects are discarded: the live
            // handlers re-execute the event from the snapshot and
            // regenerate them (plus the transfer dispatch) identically.
            SlotKind::Boundary {
                snap: ev.snap.expect("boundary snapshot kept"),
                ev: ev.kind,
            }
        } else {
            SlotKind::Placed {
                deltas: ev.deltas,
                stats: ev.stats,
                schedules: ev.schedules.iter().map(|(t, _)| *t).collect(),
            }
        };
        slots.push(Slot {
            rel_time: ev.rel_time,
            kind,
        });
    }
    while let Some(Reverse((at, idx))) = heap.pop() {
        let (kind, scheduled_by) = pushes[idx];
        if scheduled_by == boundary {
            // Scheduled by the boundary event itself: discarded with the
            // rest of its effects, re-scheduled live.
            continue;
        }
        debug_assert!(boundary.is_some(), "an exhausted scratch leaves no residue");
        slots.push(Slot {
            rel_time: at,
            kind: SlotKind::Pass { ev: kind },
        });
    }

    let terminal = if boundary.is_none() {
        Some(snapshot(&rec.machine.cores[0]))
    } else {
        None
    };
    Some(Rc::new(Region { slots, terminal }))
}

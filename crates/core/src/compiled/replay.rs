//! Region replay: the hybrid world that swaps between pre-placed
//! schedules and the live event handlers.
//!
//! [`HybridWorld`] wraps the real [`Machine`] and intercepts `Advance`
//! events. When a core is quiescent at one (empty ROB, dispatch not
//! throttled) and its program counter starts a compilable window, the
//! region's slots take over: every event the reference engine would have
//! executed for that core becomes one [`MachineEvent::Slot`] at the same
//! `(time, seq)` position, applying the recorded deltas instead of
//! re-deciding hazards and costs. Transfers, deposits, and everything on
//! non-replaying cores stay fully live. A slot firing with no replay
//! state behind it, or past its region's last slot, is a stale schedule —
//! a hard [`SimError::Internal`], never a silent no-op.

use std::rc::Rc;

use pimsim_event::{SimTime, World};

use super::region::{compile_region, window_end, CoreSnap, PassKind, Region, RegionKey, SlotKind};
use super::RegionMemo;
use crate::machine::rob::{Core, State};
use crate::machine::{Ctx, Delta, Machine, MachineEvent, SimError};
use crate::stats::ScheduleStats;

/// A region in progress on one core: where its schedule is anchored in
/// absolute time, sequence numbers, and program position.
struct Replay {
    region: Rc<Region>,
    /// Next slot to consume; slots fire in kernel order, so a plain
    /// cursor suffices.
    cursor: usize,
    t0: SimTime,
    base_seq: u64,
    entry_pc: u32,
}

/// The compiled engine's world: the live machine plus per-core replay
/// state and the region memo.
pub(crate) struct HybridWorld<'a> {
    machine: Machine<'a>,
    replays: Vec<Option<Replay>>,
    /// `None` memoizes a failed compile so the site falls back natively
    /// without re-running the scratch every entry. Checked out of a
    /// [`ScheduleCache`](super::ScheduleCache) when the run has one, so
    /// reuse can span runs.
    memo: RegionMemo,
    schedule: ScheduleStats,
}

/// Rebases a scratch-relative event onto the live timeline.
fn real_event(core: usize, ev: PassKind, base_seq: u64) -> MachineEvent {
    match ev {
        PassKind::Advance => MachineEvent::Advance { core },
        PassKind::Complete { rel_seq } => MachineEvent::Complete {
            core,
            seq: base_seq + rel_seq,
        },
    }
}

/// Writes a scratch-relative core snapshot onto the live core, rebasing
/// pc, times, and sequence numbers. Hazard metadata is re-derived through
/// [`Core::entry_for`] — the same path live dispatch uses.
fn materialize(core: &mut Core, snap: &CoreSnap, t0: SimTime, base_seq: u64, entry_pc: u32) {
    core.pc = entry_pc + snap.pc;
    core.regs = snap.regs;
    core.halted = snap.halted;
    core.next_dispatch = t0 + snap.next_dispatch;
    core.advance_pending = snap.advance_pending;
    core.vector_busy = snap.vector_busy;
    core.busy_xbars = snap.busy_xbars.clone();
    core.seq_next = base_seq + snap.seq_next;
    core.rob.clear();
    for e in &snap.rob {
        let mut entry = core.entry_for(e.tag, e.class, e.res.clone(), None, base_seq + e.rel_seq);
        entry.state = e.state;
        // Live dispatch leaves Waiting entries at time zero until issue.
        entry.issue_at = match e.state {
            State::Waiting => SimTime::ZERO,
            State::Executing | State::Done => t0 + e.issue_at,
        };
        core.rob.push_back(entry);
    }
}

impl<'a> HybridWorld<'a> {
    pub(crate) fn new(mut machine: Machine<'a>, memo: RegionMemo) -> HybridWorld<'a> {
        let n = machine.cores.len();
        machine.hybrid = true;
        HybridWorld {
            machine,
            replays: (0..n).map(|_| None).collect(),
            memo,
            schedule: ScheduleStats::default(),
        }
    }

    pub(crate) fn machine(&self) -> &Machine<'a> {
        &self.machine
    }

    pub(crate) fn into_parts(self) -> (Machine<'a>, ScheduleStats, RegionMemo) {
        (self.machine, self.schedule, self.memo)
    }

    /// Tries to start a compiled region at `core`'s current position.
    /// On success the triggering `Advance` becomes the region's first
    /// slot and `true` is returned; otherwise the caller handles the
    /// event natively.
    fn try_enter(&mut self, core: usize, ctx: &mut Ctx) -> bool {
        if self.machine.error.is_some() || self.machine.telemetry.trace_on {
            return false;
        }
        if let Some(rep) = &self.replays[core] {
            // A pacing slot can still be pending after the boundary with
            // the ROB already drained; entering a new region then would
            // misread that stale slot as the new region's first event.
            if rep.cursor < rep.region.slots.len() {
                return false;
            }
        }
        let now = ctx.now();
        if !self.machine.entry_ready(core, now) {
            return false;
        }
        let c = &self.machine.cores[core];
        debug_assert!(
            c.busy_xbars.is_empty() && !c.vector_busy,
            "empty ROB, idle units"
        );
        let pc = c.pc as usize;
        let end = window_end(&c.instrs, pc);
        if end == pc {
            // The next instruction is itself a transfer/branch: stay live.
            return false;
        }
        let key = RegionKey::new(c, pc, end);
        let region = match self.memo.get(&key) {
            Some(hit) => {
                match hit {
                    Some(_) => self.schedule.regions_reused += 1,
                    None => self.schedule.regions_fallback += 1,
                }
                hit.clone()
            }
            None => {
                let compiled = compile_region(&self.machine, core, pc, end);
                match &compiled {
                    Some(_) => self.schedule.regions_compiled += 1,
                    None => self.schedule.regions_fallback += 1,
                }
                self.memo.insert(key, compiled.clone());
                compiled
            }
        };
        let Some(region) = region else { return false };
        let c = &self.machine.cores[core];
        self.replays[core] = Some(Replay {
            region,
            cursor: 0,
            t0: now,
            base_seq: c.seq_next,
            entry_pc: c.pc,
        });
        self.replay_slot(core, ctx);
        true
    }

    /// Runs a dispatch that `complete` handed back (see
    /// [`Machine::deferred_advance`]): either a new region starts at the
    /// completion site, or the native `try_advance` runs exactly where
    /// the handler would have called it.
    fn drain_deferred(&mut self, ctx: &mut Ctx) {
        if let Some(core) = self.machine.deferred_advance.take() {
            if self.try_enter(core, ctx) {
                // The entry fused into the already-dispatched completion
                // event: slot 0 replaced its dispatch tail, not a kernel
                // event of its own, so it is not a placed event.
                self.schedule.events_placed -= 1;
            } else {
                self.machine.try_advance(core, ctx);
            }
        }
    }

    /// Consumes the next slot of `core`'s active region.
    fn replay_slot(&mut self, core: usize, ctx: &mut Ctx) {
        let now = ctx.now();
        let Some(rep) = self.replays[core].as_mut() else {
            let detail = format!("schedule slot fired for core{core} with no active replay");
            self.machine.fail(SimError::Internal { detail }, ctx);
            return;
        };
        if rep.cursor >= rep.region.slots.len() {
            let detail = format!(
                "stale schedule slot for core{core}: cursor {} past {} slots",
                rep.cursor,
                rep.region.slots.len()
            );
            self.machine.fail(SimError::Internal { detail }, ctx);
            return;
        }
        let region = Rc::clone(&rep.region);
        let (t0, base_seq, entry_pc) = (rep.t0, rep.base_seq, rep.entry_pc);
        let idx = rep.cursor;
        rep.cursor += 1;
        let last = rep.cursor == region.slots.len();
        let slot = &region.slots[idx];
        debug_assert_eq!(now, t0 + slot.rel_time, "slot fired off its placement");
        match &slot.kind {
            SlotKind::Placed {
                deltas,
                stats,
                schedules,
            } => {
                self.schedule.events_placed += 1;
                self.machine.finish_time = self.machine.finish_time.max(now);
                for d in deltas {
                    if let Delta::Payload(res) = d {
                        if self.machine.functional {
                            self.machine.execute_functional(core, res);
                        }
                    } else {
                        self.machine.telemetry.apply(d);
                    }
                }
                let s = &mut self.machine.cores[core].stats;
                s.dispatched += stats.dispatched;
                s.matrix_busy += stats.matrix_busy;
                s.vector_busy += stats.vector_busy;
                s.transfer_busy += stats.transfer_busy;
                for rel in schedules {
                    ctx.schedule_at(t0 + *rel, MachineEvent::Slot { core });
                }
                if last {
                    if let Some(snap) = &region.terminal {
                        materialize(&mut self.machine.cores[core], snap, t0, base_seq, entry_pc);
                    }
                }
            }
            SlotKind::Boundary { snap, ev } => {
                self.schedule.events_dispatched += 1;
                materialize(&mut self.machine.cores[core], snap, t0, base_seq, entry_pc);
                self.machine.handle(real_event(core, *ev, base_seq), ctx);
                self.drain_deferred(ctx);
            }
            SlotKind::Pass { ev } => {
                self.schedule.events_dispatched += 1;
                self.machine.handle(real_event(core, *ev, base_seq), ctx);
                self.drain_deferred(ctx);
            }
        }
    }
}

impl World for HybridWorld<'_> {
    type Event = MachineEvent;

    fn handle(&mut self, ev: MachineEvent, ctx: &mut Ctx) {
        match ev {
            MachineEvent::Slot { core } => self.replay_slot(core, ctx),
            MachineEvent::Advance { core } => {
                self.machine.cores[core].advance_pending = false;
                if !self.try_enter(core, ctx) {
                    self.schedule.events_dispatched += 1;
                    self.machine.try_advance(core, ctx);
                }
            }
            other => {
                self.schedule.events_dispatched += 1;
                self.machine.handle(other, ctx);
                self.drain_deferred(ctx);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    //! Stale-schedule paths must be hard errors, never silent no-ops:
    //! a `Slot` event desynchronized from its replay state means the
    //! compiled timeline and the machine have diverged.

    use super::*;
    use crate::machine::Simulator;
    use pimsim_arch::ArchConfig;
    use pimsim_event::Kernel;
    use pimsim_isa::asm;

    fn machine_for<'a>(arch: &'a ArchConfig, program: &pimsim_isa::Program) -> Machine<'a> {
        Simulator::new(arch).build_machine(program, arch.sim.functional)
    }

    fn one_core_program() -> pimsim_isa::Program {
        asm::assemble(".core 0\nvfill [r0+0], 1, 4\nhalt\n").expect("assembles")
    }

    fn expect_internal(err: Option<SimError>, needle: &str) {
        match err {
            Some(SimError::Internal { detail }) => {
                assert!(detail.contains(needle), "unexpected detail: {detail}")
            }
            other => panic!("expected Internal containing {needle:?}, got {other:?}"),
        }
    }

    #[test]
    fn slot_reaching_the_event_engine_is_an_internal_error() {
        let arch = ArchConfig::small_test();
        let program = one_core_program();
        let mut kernel = Kernel::new(machine_for(&arch, &program));
        kernel.schedule_at(SimTime::ZERO, MachineEvent::Slot { core: 0 });
        kernel.run();
        expect_internal(
            kernel.into_world().error,
            "schedule slot for core0 reached the event engine",
        );
    }

    #[test]
    fn slot_with_no_active_replay_is_an_internal_error() {
        let arch = ArchConfig::small_test();
        let program = one_core_program();
        let mut kernel = Kernel::new(HybridWorld::new(
            machine_for(&arch, &program),
            RegionMemo::new(),
        ));
        kernel.schedule_at(SimTime::ZERO, MachineEvent::Slot { core: 0 });
        kernel.run();
        let (machine, _, _) = kernel.into_world().into_parts();
        expect_internal(machine.error, "no active replay");
    }

    #[test]
    fn slot_past_the_last_region_slot_is_an_internal_error() {
        let arch = ArchConfig::small_test();
        let program = one_core_program();
        let mut world = HybridWorld::new(machine_for(&arch, &program), RegionMemo::new());
        // An exhausted replay left behind: its region has no slots, so any
        // further slot for this core is stale by construction.
        world.replays[0] = Some(Replay {
            region: Rc::new(Region {
                slots: Vec::new(),
                terminal: None,
            }),
            cursor: 0,
            t0: SimTime::ZERO,
            base_seq: 0,
            entry_pc: 0,
        });
        let mut kernel = Kernel::new(world);
        kernel.schedule_at(SimTime::ZERO, MachineEvent::Slot { core: 0 });
        kernel.run();
        let (machine, _, _) = kernel.into_world().into_parts();
        expect_internal(machine.error, "stale schedule slot for core0");
    }
}

//! Operand resolution: ISA instructions → absolute addresses + hazard
//! ranges, using the dispatching core's register file.

use pimsim_isa::{Addr, GroupId, Instruction, PoolOp, VBinOp, VImmOp, VUnOp};

/// A half-open local-memory interval `[start, end)` used for hazard checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Range {
    pub start: u32,
    pub end: u32,
}

impl Range {
    pub fn new(start: u32, len: u32) -> Range {
        Range {
            start,
            end: start.saturating_add(len),
        }
    }

    pub fn overlaps(&self, other: &Range) -> bool {
        // Empty intervals intersect nothing.
        self.start < self.end
            && other.start < other.end
            && self.start < other.end
            && other.start < self.end
    }

    /// Conservative span of a strided 2-D access.
    ///
    /// Intermediate math runs in `i64` and both bounds clamp into the
    /// `u32` address space: a span reaching past `u32::MAX` saturates
    /// (stays conservative) instead of wrapping into an inverted — hence
    /// empty, hazard-invisible — interval.
    pub fn strided(base: u32, block_len: u32, blocks: u32, stride: i32) -> Range {
        if blocks == 0 || block_len == 0 {
            return Range::new(base, 0);
        }
        let last = base as i64 + (blocks as i64 - 1) * stride as i64;
        let lo = (base as i64).min(last).clamp(0, u32::MAX as i64) as u32;
        let hi = ((base as i64).max(last) + block_len as i64).clamp(0, u32::MAX as i64) as u32;
        Range { start: lo, end: hi }
    }
}

/// A memory-class instruction with every operand resolved to an absolute
/// element address at dispatch time.
#[derive(Debug, Clone, PartialEq)]
pub enum Resolved {
    Mvm {
        group: GroupId,
        dst: u32,
        src: u32,
        len: u32,
    },
    VBin {
        op: VBinOp,
        dst: u32,
        a: u32,
        b: u32,
        len: u32,
    },
    VImm {
        op: VImmOp,
        dst: u32,
        src: u32,
        imm: i32,
        len: u32,
    },
    VUn {
        op: VUnOp,
        dst: u32,
        src: u32,
        len: u32,
    },
    VFill {
        dst: u32,
        value: i32,
        len: u32,
    },
    VCopy2d {
        dst: u32,
        src: u32,
        block_len: u32,
        blocks: u32,
        src_stride: i32,
        dst_stride: i32,
    },
    VPool {
        op: PoolOp,
        dst: u32,
        src: u32,
        channels: u32,
        win_w: u32,
        win_h: u32,
        row_stride: i32,
    },
    Send {
        peer: u16,
        src: u32,
        len: u32,
        tag: u16,
    },
    /// `dst_stride == block_len` ⇒ contiguous (plain `recv`).
    Recv {
        peer: u16,
        dst: u32,
        block_len: u32,
        blocks: u32,
        dst_stride: i32,
        tag: u16,
    },
    GLoad {
        dst: u32,
        gaddr: u64,
        len: u32,
    },
    GStore {
        gaddr: u64,
        src: u32,
        len: u32,
    },
}

impl Resolved {
    /// Local-memory ranges read by this instruction.
    pub fn reads(&self) -> Vec<Range> {
        match self {
            Resolved::Mvm { src, len, .. } => vec![Range::new(*src, *len)],
            Resolved::VBin { a, b, len, .. } => {
                vec![Range::new(*a, *len), Range::new(*b, *len)]
            }
            Resolved::VImm { src, len, .. } | Resolved::VUn { src, len, .. } => {
                vec![Range::new(*src, *len)]
            }
            Resolved::VFill { .. } => vec![],
            Resolved::VCopy2d {
                src,
                block_len,
                blocks,
                src_stride,
                ..
            } => vec![Range::strided(*src, *block_len, *blocks, *src_stride)],
            Resolved::VPool {
                src,
                channels,
                win_w,
                win_h,
                row_stride,
                ..
            } => vec![Range::strided(
                *src,
                win_w * channels,
                (*win_h).max(1),
                *row_stride,
            )],
            Resolved::Send { src, len, .. } => vec![Range::new(*src, *len)],
            Resolved::Recv { .. } => vec![],
            Resolved::GLoad { .. } => vec![],
            Resolved::GStore { src, len, .. } => vec![Range::new(*src, *len)],
        }
    }

    /// Local-memory ranges written by this instruction. For `MVM` the
    /// output length is supplied by the caller (from the group table).
    pub fn writes(&self, mvm_out_len: u32) -> Vec<Range> {
        match self {
            Resolved::Mvm { dst, .. } => vec![Range::new(*dst, mvm_out_len)],
            Resolved::VBin { dst, len, .. }
            | Resolved::VImm { dst, len, .. }
            | Resolved::VUn { dst, len, .. }
            | Resolved::VFill { dst, len, .. } => vec![Range::new(*dst, *len)],
            Resolved::VCopy2d {
                dst,
                block_len,
                blocks,
                dst_stride,
                ..
            } => vec![Range::strided(*dst, *block_len, *blocks, *dst_stride)],
            Resolved::VPool { dst, channels, .. } => vec![Range::new(*dst, *channels)],
            Resolved::Send { .. } => vec![],
            Resolved::Recv {
                dst,
                block_len,
                blocks,
                dst_stride,
                ..
            } => vec![Range::strided(*dst, *block_len, *blocks, *dst_stride)],
            Resolved::GLoad { dst, len, .. } => vec![Range::new(*dst, *len)],
            Resolved::GStore { .. } => vec![],
        }
    }
}

/// Resolves `addr` against a register file.
fn abs(addr: Addr, regs: &[i32; 32]) -> u32 {
    let base = regs[addr.base().index() as usize] as i64;
    (base + addr.offset() as i64).max(0) as u32
}

/// Resolves a memory-class instruction. Returns `None` for scalar-class
/// instructions (they execute at dispatch and never enter the ROB).
pub fn resolve(instr: &Instruction, regs: &[i32; 32]) -> Option<Resolved> {
    use Instruction as I;
    Some(match instr {
        I::Mvm {
            group,
            dst,
            src,
            len,
        } => Resolved::Mvm {
            group: *group,
            dst: abs(*dst, regs),
            src: abs(*src, regs),
            len: *len,
        },
        I::VBin { op, dst, a, b, len } => Resolved::VBin {
            op: *op,
            dst: abs(*dst, regs),
            a: abs(*a, regs),
            b: abs(*b, regs),
            len: *len,
        },
        I::VImm {
            op,
            dst,
            src,
            imm,
            len,
        } => Resolved::VImm {
            op: *op,
            dst: abs(*dst, regs),
            src: abs(*src, regs),
            imm: *imm,
            len: *len,
        },
        I::VUn { op, dst, src, len } => Resolved::VUn {
            op: *op,
            dst: abs(*dst, regs),
            src: abs(*src, regs),
            len: *len,
        },
        I::VFill { dst, value, len } => Resolved::VFill {
            dst: abs(*dst, regs),
            value: *value,
            len: *len,
        },
        I::VCopy2d {
            dst,
            src,
            block_len,
            blocks,
            src_stride,
            dst_stride,
        } => Resolved::VCopy2d {
            dst: abs(*dst, regs),
            src: abs(*src, regs),
            block_len: *block_len,
            blocks: *blocks,
            src_stride: *src_stride,
            dst_stride: *dst_stride,
        },
        I::VPool {
            op,
            dst,
            src,
            channels,
            win_w,
            win_h,
            row_stride,
        } => Resolved::VPool {
            op: *op,
            dst: abs(*dst, regs),
            src: abs(*src, regs),
            channels: *channels,
            win_w: *win_w,
            win_h: *win_h,
            row_stride: *row_stride,
        },
        I::Send {
            peer,
            src,
            len,
            tag,
        } => Resolved::Send {
            peer: peer.0,
            src: abs(*src, regs),
            len: *len,
            tag: *tag,
        },
        I::Recv {
            peer,
            dst,
            len,
            tag,
        } => Resolved::Recv {
            peer: peer.0,
            dst: abs(*dst, regs),
            block_len: *len,
            blocks: 1,
            dst_stride: *len as i32,
            tag: *tag,
        },
        I::Recv2d {
            peer,
            dst,
            block_len,
            blocks,
            dst_stride,
            tag,
        } => Resolved::Recv {
            peer: peer.0,
            dst: abs(*dst, regs),
            block_len: *block_len,
            blocks: *blocks,
            dst_stride: *dst_stride,
            tag: *tag,
        },
        I::GLoad { dst, gaddr, len } => Resolved::GLoad {
            dst: abs(*dst, regs),
            gaddr: abs(*gaddr, regs) as u64,
            len: *len,
        },
        I::GStore { gaddr, src, len } => Resolved::GStore {
            gaddr: abs(*gaddr, regs) as u64,
            src: abs(*src, regs),
            len: *len,
        },
        I::SBin { .. } | I::SImm { .. } | I::Branch { .. } | I::Jump { .. } | I::Halt | I::Nop => {
            return None
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimsim_isa::Reg;

    fn regs_with(r1: i32) -> [i32; 32] {
        let mut regs = [0i32; 32];
        regs[1] = r1;
        regs
    }

    #[test]
    fn range_overlap() {
        let a = Range::new(0, 10);
        let b = Range::new(9, 1);
        let c = Range::new(10, 5);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert!(!Range::new(5, 0).overlaps(&a), "empty range never overlaps");
    }

    #[test]
    fn strided_range_spans_both_directions() {
        let r = Range::strided(100, 4, 3, 10);
        assert_eq!((r.start, r.end), (100, 124));
        let r = Range::strided(100, 4, 3, -10);
        assert_eq!((r.start, r.end), (80, 104));
    }

    #[test]
    fn strided_range_saturates_at_the_address_space_edge() {
        // Regression: a span reaching past u32::MAX used to wrap into an
        // inverted (empty) interval that no hazard check could see.
        let r = Range::strided(u32::MAX - 10, 8, 4, 16);
        assert_eq!(r.start, u32::MAX - 10);
        assert_eq!(r.end, u32::MAX, "end saturates instead of wrapping");
        assert!(r.overlaps(&Range::new(u32::MAX - 1, 1)));
        // Large negative strides clamp the low bound at zero.
        let r = Range::strided(10, 4, u32::MAX, i32::MIN);
        assert_eq!(r.start, 0);
    }

    #[test]
    fn resolution_uses_registers() {
        let regs = regs_with(1000);
        let i = pimsim_isa::asm::parse_instruction("vadd [r1+24], [r1+0], [r0+8], 8").unwrap();
        let r = resolve(&i, &regs).unwrap();
        match r {
            Resolved::VBin { dst, a, b, len, .. } => {
                assert_eq!((dst, a, b, len), (1024, 1000, 8, 8));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn scalar_instructions_do_not_resolve() {
        let regs = [0i32; 32];
        let i = pimsim_isa::Instruction::SImm {
            op: pimsim_isa::SImmOp::Add,
            rd: Reg::R1,
            rs1: Reg::R0,
            imm: 5,
        };
        assert!(resolve(&i, &regs).is_none());
        assert!(resolve(&pimsim_isa::Instruction::Halt, &regs).is_none());
    }

    #[test]
    fn recv_variants_unify() {
        let regs = [0i32; 32];
        let r1 = resolve(
            &pimsim_isa::asm::parse_instruction("recv core1, [r0+64], 32, tag=7").unwrap(),
            &regs,
        )
        .unwrap();
        match r1 {
            Resolved::Recv {
                block_len,
                blocks,
                dst_stride,
                ..
            } => {
                assert_eq!((block_len, blocks, dst_stride), (32, 1, 32));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn hazard_ranges_cover_operands() {
        let regs = [0i32; 32];
        let i = pimsim_isa::asm::parse_instruction(
            "vcopy2d [r0+0], [r0+1000], block=4, blocks=3, sstride=16, dstride=8",
        )
        .unwrap();
        let r = resolve(&i, &regs).unwrap();
        assert_eq!(
            r.reads(),
            vec![Range {
                start: 1000,
                end: 1036
            }]
        );
        assert_eq!(r.writes(0), vec![Range { start: 0, end: 20 }]);
    }
}

//! The simulation machine: per-core frontends, ROBs, execution units, the
//! rendezvous transfer fabric, and the run loop.

use std::collections::{HashMap, VecDeque};
use std::error::Error;
use std::fmt;

use pimsim_arch::model::CostModel;
use pimsim_arch::{ArchConfig, ArchError};
use pimsim_event::{EventCtx, Kernel, RunResult, SimTime};
use pimsim_isa::{
    BranchCond, GroupConfig, InstrClass, Instruction, IsaError, Program, ProgramLimits, SBinOp,
    SImmOp,
};

use crate::exec::{execute_local, Memory};
use crate::noc::Noc;
use crate::resolve::{resolve, Range, Resolved};
use crate::stats::{CoreStats, EnergyBreakdown, NodeStats, SimReport, TraceEntry, TRACE_CAP};

/// Errors produced by a simulation run.
#[derive(Debug)]
pub enum SimError {
    /// The program failed validation against the architecture.
    InvalidProgram(IsaError),
    /// The architecture configuration is invalid.
    Arch(ArchError),
    /// Simulation stopped making progress before all cores halted
    /// (mismatched rendezvous, circular wait...).
    Deadlock {
        /// Time at which the event queue drained.
        time: SimTime,
        /// Human-readable description of stuck cores.
        detail: String,
    },
    /// The `sim.max_cycles` safety horizon was reached.
    Timeout {
        /// The horizon, in core cycles.
        max_cycles: u64,
    },
    /// A matched send/recv pair disagreed on payload length.
    TagMismatch {
        /// Description of the mismatching pair.
        detail: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidProgram(e) => write!(f, "invalid program: {e}"),
            SimError::Arch(e) => write!(f, "invalid architecture: {e}"),
            SimError::Deadlock { time, detail } => {
                write!(f, "deadlock at {time}: {detail}")
            }
            SimError::Timeout { max_cycles } => {
                write!(
                    f,
                    "simulation exceeded the {max_cycles}-cycle safety horizon"
                )
            }
            SimError::TagMismatch { detail } => write!(f, "transfer tag mismatch: {detail}"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::InvalidProgram(e) => Some(e),
            SimError::Arch(e) => Some(e),
            _ => None,
        }
    }
}

impl From<IsaError> for SimError {
    fn from(e: IsaError) -> Self {
        SimError::InvalidProgram(e)
    }
}

impl From<ArchError> for SimError {
    fn from(e: ArchError) -> Self {
        SimError::Arch(e)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Waiting,
    Executing,
    Done,
}

#[derive(Debug)]
struct InFlight {
    seq: u64,
    res: Resolved,
    class: InstrClass,
    tag: u16,
    state: State,
    issue_at: SimTime,
    /// Rendered assembly, kept only when tracing.
    text: Option<String>,
    reads: Vec<Range>,
    writes: Vec<Range>,
    /// Global-memory interval `[start, end)` touched, with `true` = write.
    gmem: Option<(u64, u64, bool)>,
    /// Crossbars this MVM occupies (empty otherwise).
    xbars: Vec<u32>,
}

/// Do two optional global accesses conflict (overlap with a write)?
fn gmem_conflict(a: &Option<(u64, u64, bool)>, b: &Option<(u64, u64, bool)>) -> bool {
    match (a, b) {
        (Some((s1, e1, w1)), Some((s2, e2, w2))) => (*w1 || *w2) && s1 < e2 && s2 < e1,
        _ => false,
    }
}

#[derive(Debug)]
struct Core {
    pc: u32,
    regs: [i32; 32],
    halted: bool,
    rob: VecDeque<InFlight>,
    rob_size: usize,
    next_dispatch: SimTime,
    advance_pending: bool,
    vector_busy: bool,
    busy_xbars: Vec<u32>,
    seq_next: u64,
    instrs: Vec<Instruction>,
    groups: Vec<GroupConfig>,
    tags: Vec<u16>,
    mem: Memory,
    stats: CoreStats,
}

impl Core {
    fn find(&mut self, seq: u64) -> Option<&mut InFlight> {
        self.rob.iter_mut().find(|e| e.seq == seq)
    }
}

/// One pending side of a transfer channel.
#[derive(Debug, Clone, Copy)]
struct Pending {
    core: u16,
    seq: u64,
}

/// A message sitting in a receiver's credit queue.
#[derive(Debug)]
struct ArrivedMsg {
    len: u32,
    /// Captured payload (functional runs only).
    data: Vec<i32>,
}

/// One `(sender, receiver, tag)` flow-controlled channel.
#[derive(Debug, Default)]
struct Channel {
    /// Messages delivered but not yet consumed by a `RECV`.
    arrived: VecDeque<ArrivedMsg>,
    /// Messages currently crossing the mesh.
    in_flight: u32,
    /// Sends waiting for a credit.
    waiting_sends: VecDeque<Pending>,
    /// The receiver's posted `RECV` awaiting a message (at most one:
    /// the transfer unit is single-occupancy).
    parked_recv: Option<Pending>,
}

struct World {
    cfg: ArchConfig,
    cores: Vec<Core>,
    noc: Noc,
    gmem: Memory,
    /// Flow-controlled channels keyed by `(sender, receiver, tag)`.
    channels: HashMap<(u16, u16, u16), Channel>,
    functional: bool,
    dispatch_interval: SimTime,
    energy: EnergyBreakdown,
    class_counts: [u64; 4],
    instructions: u64,
    per_node: Vec<NodeStats>,
    error: Option<SimError>,
    trace_on: bool,
    trace: Vec<TraceEntry>,
    /// Timestamp of the last real activity (the kernel clock advances to
    /// the horizon when the queue drains; latency must not).
    finish_time: SimTime,
}

type Ctx<'x> = EventCtx<World>;

impl World {
    fn model(&self) -> CostModel<'_> {
        CostModel::new(&self.cfg)
    }

    fn node_stats(&mut self, tag: u16) -> &mut NodeStats {
        let idx = tag as usize;
        if self.per_node.len() <= idx {
            self.per_node.resize(idx + 1, NodeStats::default());
        }
        &mut self.per_node[idx]
    }

    fn record_trace(&mut self, time: SimTime, core: u16, instr: String) {
        if self.trace.len() < TRACE_CAP {
            self.trace.push(TraceEntry { time, core, instr });
        }
    }

    fn fail(&mut self, err: SimError, ctx: &mut Ctx<'_>) {
        if self.error.is_none() {
            self.error = Some(err);
        }
        ctx.stop();
    }

    // ------------------------------------------------------------ dispatch --

    fn try_advance(&mut self, c: usize, ctx: &mut Ctx<'_>) {
        self.finish_time = self.finish_time.max(ctx.now());
        loop {
            if self.error.is_some() || self.cores[c].halted {
                return;
            }
            let now = ctx.now();
            {
                let core = &mut self.cores[c];
                if core.rob.len() >= core.rob_size {
                    return; // a completion will re-trigger us
                }
                if core.next_dispatch > now {
                    if !core.advance_pending {
                        core.advance_pending = true;
                        let at = core.next_dispatch;
                        ctx.schedule_at(at, move |w: &mut World, ctx| {
                            w.cores[c].advance_pending = false;
                            w.try_advance(c, ctx);
                        });
                    }
                    return;
                }
            }
            let pc = self.cores[c].pc as usize;
            let Some(instr) = self.cores[c].instrs.get(pc).cloned() else {
                self.cores[c].halted = true;
                return;
            };
            let tag = self.cores[c].tags.get(pc).copied().unwrap_or(0);
            let dispatch_at = self.cores[c].next_dispatch.max(now);
            self.cores[c].next_dispatch = dispatch_at + self.dispatch_interval;
            self.cores[c].stats.dispatched += 1;
            self.instructions += 1;
            self.energy.frontend += self.model().frontend_energy();
            self.node_stats(tag).instructions += 1;

            match resolve(&instr, &self.cores[c].regs) {
                None => {
                    // Scalar class: execute at dispatch.
                    self.class_counts[3] += 1;
                    self.energy.scalar += self.model().scalar_cost().energy;
                    if self.trace_on {
                        self.record_trace(dispatch_at, c as u16, instr.to_string());
                    }
                    self.exec_scalar(c, &instr);
                }
                Some(res) => {
                    let class = instr.class();
                    match class {
                        InstrClass::Matrix => self.class_counts[0] += 1,
                        InstrClass::Vector => self.class_counts[1] += 1,
                        InstrClass::Transfer => self.class_counts[2] += 1,
                        InstrClass::Scalar => unreachable!("resolved scalar"),
                    }
                    let core = &mut self.cores[c];
                    let (mvm_out, xbars) = match &res {
                        Resolved::Mvm { group, .. } => {
                            let g = &core.groups[group.as_usize()];
                            (g.output_len, g.xbar_ids.clone())
                        }
                        _ => (0, Vec::new()),
                    };
                    let seq = core.seq_next;
                    core.seq_next += 1;
                    let gmem = match &res {
                        Resolved::GLoad { gaddr, len, .. } => {
                            Some((*gaddr, gaddr + *len as u64, false))
                        }
                        Resolved::GStore { gaddr, len, .. } => {
                            Some((*gaddr, gaddr + *len as u64, true))
                        }
                        _ => None,
                    };
                    let text = self.trace_on.then(|| instr.to_string());
                    let entry = InFlight {
                        seq,
                        reads: res.reads(),
                        writes: res.writes(mvm_out),
                        gmem,
                        res,
                        class,
                        tag,
                        state: State::Waiting,
                        issue_at: SimTime::ZERO,
                        text,
                        xbars,
                    };
                    core.rob.push_back(entry);
                    core.pc += 1;
                    self.try_issue(c, ctx);
                    continue;
                }
            }
        }
    }

    fn exec_scalar(&mut self, c: usize, instr: &Instruction) {
        let core = &mut self.cores[c];
        let rd_write = |regs: &mut [i32; 32], rd: pimsim_isa::Reg, v: i32| {
            if !rd.is_zero() {
                regs[rd.index() as usize] = v;
            }
        };
        match instr {
            Instruction::SBin { op, rd, rs1, rs2 } => {
                let a = core.regs[rs1.index() as usize];
                let b = core.regs[rs2.index() as usize];
                let v = match op {
                    SBinOp::Add => a.wrapping_add(b),
                    SBinOp::Sub => a.wrapping_sub(b),
                    SBinOp::Mul => a.wrapping_mul(b),
                    SBinOp::And => a & b,
                    SBinOp::Or => a | b,
                    SBinOp::Xor => a ^ b,
                    SBinOp::Slt => (a < b) as i32,
                    SBinOp::Sll => ((a as u32) << (b as u32 & 31)) as i32,
                    SBinOp::Srl => ((a as u32) >> (b as u32 & 31)) as i32,
                };
                rd_write(&mut core.regs, *rd, v);
                core.pc += 1;
            }
            Instruction::SImm { op, rd, rs1, imm } => {
                let a = core.regs[rs1.index() as usize];
                let v = match op {
                    SImmOp::Add => a.wrapping_add(*imm),
                    SImmOp::Mul => a.wrapping_mul(*imm),
                    SImmOp::Sll => ((a as u32) << (*imm as u32 & 31)) as i32,
                    SImmOp::Srl => ((a as u32) >> (*imm as u32 & 31)) as i32,
                    SImmOp::And => a & *imm,
                    SImmOp::Or => a | *imm,
                    SImmOp::Slt => (a < *imm) as i32,
                };
                rd_write(&mut core.regs, *rd, v);
                core.pc += 1;
            }
            Instruction::Branch {
                cond,
                rs1,
                rs2,
                target,
            } => {
                let a = core.regs[rs1.index() as usize];
                let b = core.regs[rs2.index() as usize];
                let taken = match cond {
                    BranchCond::Eq => a == b,
                    BranchCond::Ne => a != b,
                    BranchCond::Lt => a < b,
                    BranchCond::Ge => a >= b,
                };
                core.pc = if taken { *target } else { core.pc + 1 };
            }
            Instruction::Jump { target } => core.pc = *target,
            Instruction::Halt => core.halted = true,
            Instruction::Nop => core.pc += 1,
            _ => unreachable!("memory-class instruction in exec_scalar"),
        }
    }

    // --------------------------------------------------------------- issue --

    /// The flow-control channel of a transfer, if any: `(src, dst, tag)`.
    fn channel_key(c: u16, res: &Resolved) -> Option<(u16, u16, u16)> {
        match res {
            Resolved::Send { peer, tag, .. } => Some((c, *peer, *tag)),
            Resolved::Recv { peer, tag, .. } => Some((*peer, c, *tag)),
            _ => None,
        }
    }

    fn try_issue(&mut self, c: usize, ctx: &mut Ctx<'_>) {
        if self.error.is_some() {
            return;
        }
        let now = ctx.now();
        // Collect issuable entries first (borrow discipline), then start them.
        loop {
            let mut candidate: Option<u64> = None;
            {
                let core = &self.cores[c];
                'scan: for (i, e) in core.rob.iter().enumerate() {
                    if e.state != State::Waiting {
                        continue;
                    }
                    // Hazards against older in-flight instructions.
                    for older in core.rob.iter().take(i) {
                        if older.state == State::Done {
                            continue;
                        }
                        let raw = e
                            .reads
                            .iter()
                            .any(|r| older.writes.iter().any(|w| r.overlaps(w)));
                        let waw = e
                            .writes
                            .iter()
                            .any(|r| older.writes.iter().any(|w| r.overlaps(w)));
                        let war = e
                            .writes
                            .iter()
                            .any(|r| older.reads.iter().any(|w| r.overlaps(w)));
                        if raw || waw || war || gmem_conflict(&e.gmem, &older.gmem) {
                            continue 'scan;
                        }
                        // Transfers may overtake each other *across*
                        // channels, but each (src, dst, tag) channel stays
                        // FIFO so messages match in program order.
                        if e.class == InstrClass::Transfer && older.class == InstrClass::Transfer {
                            let ek = Self::channel_key(c as u16, &e.res);
                            let ok = Self::channel_key(c as u16, &older.res);
                            if ek.is_some() && ek == ok {
                                continue 'scan;
                            }
                        }
                    }
                    // Structural availability.
                    let ok = match e.class {
                        InstrClass::Vector => !core.vector_busy,
                        // The transfer unit pipelines: waits cost time but
                        // do not block unrelated channels.
                        InstrClass::Transfer => true,
                        InstrClass::Matrix => {
                            // The paper's structure hazard: same crossbar ⇒ wait
                            // (an ablation flag can disable the rule).
                            !self.cfg.sim.structure_hazard
                                || e.xbars.iter().all(|x| !core.busy_xbars.contains(x))
                        }
                        InstrClass::Scalar => unreachable!(),
                    };
                    if ok {
                        candidate = Some(e.seq);
                        break;
                    }
                }
            }
            let Some(seq) = candidate else { return };
            self.start(c, seq, now, ctx);
        }
    }

    fn start(&mut self, c: usize, seq: u64, now: SimTime, ctx: &mut Ctx<'_>) {
        let model_scalar = self.dispatch_interval; // borrow dance helper
        let _ = model_scalar;
        let (class, res) = {
            let e = self.cores[c].find(seq).expect("entry exists");
            e.state = State::Executing;
            e.issue_at = now;
            (e.class, e.res.clone())
        };
        match class {
            InstrClass::Vector => {
                let cost = {
                    let m = self.model();
                    match &res {
                        Resolved::VBin { len, .. } => m.vector_cost(*len, 2, 1),
                        Resolved::VImm { len, .. } | Resolved::VUn { len, .. } => {
                            m.vector_cost(*len, 1, 1)
                        }
                        Resolved::VFill { len, .. } => m.vector_cost(*len, 0, 1),
                        Resolved::VCopy2d {
                            block_len, blocks, ..
                        } => m.vector_cost(block_len * blocks, 1, 1),
                        Resolved::VPool {
                            channels,
                            win_w,
                            win_h,
                            ..
                        } => m.vector_cost(channels * win_w * win_h, 1, 1),
                        other => unreachable!("vector class mismatch: {other:?}"),
                    }
                };
                self.cores[c].vector_busy = true;
                self.energy.vector += cost.energy;
                let tag = self.cores[c].find(seq).map(|e| e.tag).unwrap_or(0);
                self.node_stats(tag).energy += cost.energy;
                let end = now + cost.time;
                ctx.schedule_at(end, move |w: &mut World, ctx| w.complete(c, seq, ctx));
            }
            InstrClass::Matrix => {
                let Resolved::Mvm { group, .. } = &res else {
                    unreachable!("matrix class mismatch")
                };
                let (inp, outp, nx) = {
                    let g = &self.cores[c].groups[group.as_usize()];
                    (g.input_len, g.output_len, g.xbar_ids.len() as u32)
                };
                let cost = self.model().mvm_cost(inp, outp, nx);
                let xbars = self.cores[c]
                    .find(seq)
                    .map(|e| e.xbars.clone())
                    .unwrap_or_default();
                self.cores[c].busy_xbars.extend(xbars);
                self.energy.matrix += cost.energy;
                let tag = self.cores[c].find(seq).map(|e| e.tag).unwrap_or(0);
                self.node_stats(tag).energy += cost.energy;
                let end = now + cost.time;
                ctx.schedule_at(end, move |w: &mut World, ctx| w.complete(c, seq, ctx));
            }
            InstrClass::Transfer => {
                self.start_transfer(c, seq, res, now, ctx);
            }
            InstrClass::Scalar => unreachable!(),
        }
    }

    fn start_transfer(
        &mut self,
        c: usize,
        seq: u64,
        res: Resolved,
        now: SimTime,
        ctx: &mut Ctx<'_>,
    ) {
        match res {
            Resolved::Send { peer, len, tag, .. } => {
                let credits = self.cfg.noc.channel_credits;
                let key = (c as u16, peer, tag);
                let chan = self.channels.entry(key).or_default();
                if chan.in_flight + chan.arrived.len() as u32 >= credits {
                    chan.waiting_sends.push_back(Pending {
                        core: c as u16,
                        seq,
                    });
                } else {
                    chan.in_flight += 1;
                    self.launch_send(
                        key,
                        Pending {
                            core: c as u16,
                            seq,
                        },
                        len,
                        now,
                        ctx,
                    );
                }
            }
            Resolved::Recv {
                peer,
                block_len,
                blocks,
                tag,
                ..
            } => {
                let key = (peer, c as u16, tag);
                let recv_len = block_len * blocks;
                let chan = self.channels.entry(key).or_default();
                if let Some(msg) = chan.arrived.pop_front() {
                    if msg.len != recv_len {
                        let detail = format!(
                            "send core{peer} len {} vs recv core{c} len {recv_len} (tag {tag})",
                            msg.len
                        );
                        self.fail(SimError::TagMismatch { detail }, ctx);
                        return;
                    }
                    self.finish_recv(c, seq, msg, ctx);
                    // A credit freed: launch one waiting send, if any.
                    self.kick_channel(key, now, ctx);
                } else {
                    debug_assert!(
                        chan.parked_recv.is_none(),
                        "transfer unit is single-occupancy"
                    );
                    chan.parked_recv = Some(Pending {
                        core: c as u16,
                        seq,
                    });
                }
            }
            Resolved::GLoad { len, .. } | Resolved::GStore { len, .. } => {
                let m = CostModel::new(&self.cfg);
                let hops = m.config().resources.mesh_hops(c as u16, 0) + 1;
                let flits = m.flits_for_elems(len);
                let e_txn = m.noc_energy(flits, hops) + m.global_mem_cost(len).energy;
                let end = self.noc.memory_access(c as u16, len, now, &m);
                self.energy.transfer += e_txn;
                let tag = self.cores[c].find(seq).map(|e| e.tag).unwrap_or(0);
                self.node_stats(tag).energy += e_txn;
                ctx.schedule_at(end, move |w: &mut World, ctx| w.complete(c, seq, ctx));
            }
            other => unreachable!("transfer class mismatch: {other:?}"),
        }
    }

    /// Puts a send on the wire; it deposits into the receiver's queue at
    /// the tail-flit arrival time.
    fn launch_send(
        &mut self,
        key: (u16, u16, u16),
        send: Pending,
        len: u32,
        now: SimTime,
        ctx: &mut Ctx<'_>,
    ) {
        let m = CostModel::new(&self.cfg);
        let e_txn = m.message_energy(key.0, key.1, len);
        let end = self.noc.message(key.0, key.1, len, now, &m);
        self.energy.transfer += e_txn;
        let tag = self.cores[send.core as usize]
            .find(send.seq)
            .map(|e| e.tag)
            .unwrap_or(0);
        self.node_stats(tag).energy += e_txn;
        ctx.schedule_at(end, move |w: &mut World, ctx| {
            w.deposit(key, send, len, ctx)
        });
    }

    /// Tail flit arrived at the receiver: the send completes
    /// ("synchronized"), and either a parked `RECV` consumes the message
    /// immediately or it waits in the credit queue.
    fn deposit(&mut self, key: (u16, u16, u16), send: Pending, len: u32, ctx: &mut Ctx<'_>) {
        if self.error.is_some() {
            return;
        }
        // Capture the payload while the sender's buffer is still hazard-protected.
        let data = if self.functional {
            let src = match self.cores[send.core as usize].find(send.seq) {
                Some(e) => match e.res {
                    Resolved::Send { src, .. } => src,
                    _ => unreachable!("send side mismatch"),
                },
                None => return,
            };
            self.cores[send.core as usize].mem.read(src, len)
        } else {
            Vec::new()
        };
        // Complete the send side.
        self.finish_transfer_side(send.core as usize, send.seq, ctx);
        let chan = self.channels.entry(key).or_default();
        chan.in_flight -= 1;
        if let Some(recv) = chan.parked_recv.take() {
            let rc = recv.core as usize;
            let recv_len = self.cores[rc]
                .find(recv.seq)
                .map(|e| e.res.transfer_elems())
                .unwrap_or(0);
            if recv_len != len {
                let detail = format!(
                    "send core{} len {len} vs recv core{} len {recv_len} (tag {})",
                    key.0, key.1, key.2
                );
                self.fail(SimError::TagMismatch { detail }, ctx);
                return;
            }
            self.finish_recv(rc, recv.seq, ArrivedMsg { len, data }, ctx);
            self.kick_channel(key, ctx.now(), ctx);
        } else {
            let chan = self.channels.entry(key).or_default();
            chan.arrived.push_back(ArrivedMsg { len, data });
        }
    }

    /// A credit became free: launch the oldest waiting send, if any.
    fn kick_channel(&mut self, key: (u16, u16, u16), now: SimTime, ctx: &mut Ctx<'_>) {
        let credits = self.cfg.noc.channel_credits;
        let launch = {
            let chan = self.channels.entry(key).or_default();
            if chan.in_flight + chan.arrived.len() as u32 >= credits {
                None
            } else {
                chan.waiting_sends.pop_front()
            }
        };
        if let Some(send) = launch {
            let len = self.cores[send.core as usize]
                .find(send.seq)
                .map(|e| e.res.transfer_elems())
                .unwrap_or(0);
            self.channels.entry(key).or_default().in_flight += 1;
            self.launch_send(key, send, len, now, ctx);
        }
    }

    /// Completes a `RECV`: writes the payload and retires the entry.
    fn finish_recv(&mut self, c: usize, seq: u64, msg: ArrivedMsg, ctx: &mut Ctx<'_>) {
        if self.functional {
            if let Some(e) = self.cores[c].find(seq) {
                if let Resolved::Recv {
                    dst,
                    block_len,
                    dst_stride,
                    ..
                } = e.res
                {
                    let (dst, block_len, dst_stride) = (dst, block_len, dst_stride);
                    let mem = &mut self.cores[c].mem;
                    if block_len > 0 {
                        for (b, chunk) in msg.data.chunks(block_len as usize).enumerate() {
                            let d = (dst as i64 + b as i64 * dst_stride as i64).max(0) as u32;
                            mem.write(d, chunk);
                        }
                    }
                }
            }
        }
        self.finish_transfer_side(c, seq, ctx);
    }

    /// Marks one transfer entry done, releases the unit, updates stats,
    /// retires, and lets the core continue.
    fn finish_transfer_side(&mut self, c: usize, seq: u64, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        self.finish_time = self.finish_time.max(now);
        let (tag, span, text) = {
            let Some(e) = self.cores[c].find(seq) else {
                return;
            };
            e.state = State::Done;
            (e.tag, now.saturating_sub(e.issue_at), e.text.take())
        };
        if let Some(t) = text {
            self.record_trace(now, c as u16, t);
        }
        self.cores[c].stats.transfer_busy += span;
        self.node_stats(tag).comm_time += span;
        self.retire(c);
        self.try_issue(c, ctx);
        self.try_advance(c, ctx);
    }

    // ---------------------------------------------------------- completion --

    fn complete(&mut self, c: usize, seq: u64, ctx: &mut Ctx<'_>) {
        if self.error.is_some() {
            return;
        }
        let now = ctx.now();
        self.finish_time = self.finish_time.max(now);
        let functional = self.functional;
        let (class, res, tag, span, text) = {
            let Some(e) = self.cores[c].find(seq) else {
                return;
            };
            e.state = State::Done;
            (
                e.class,
                e.res.clone(),
                e.tag,
                now.saturating_sub(e.issue_at),
                e.text.take(),
            )
        };
        if let Some(t) = text {
            self.record_trace(now, c as u16, t);
        }
        match class {
            InstrClass::Vector => {
                self.cores[c].vector_busy = false;
                self.cores[c].stats.vector_busy += span;
                self.node_stats(tag).vector_time += span;
                if functional {
                    let core = &mut self.cores[c];
                    // Split borrow: groups are not touched by vector ops.
                    let groups = std::mem::take(&mut core.groups);
                    execute_local(&res, &mut core.mem, &groups);
                    core.groups = groups;
                }
            }
            InstrClass::Matrix => {
                let xbars = self.cores[c]
                    .find(seq)
                    .map(|e| e.xbars.clone())
                    .unwrap_or_default();
                self.cores[c].busy_xbars.retain(|x| !xbars.contains(x));
                self.cores[c].stats.matrix_busy += span;
                self.node_stats(tag).matrix_time += span;
                if functional {
                    let core = &mut self.cores[c];
                    let groups = std::mem::take(&mut core.groups);
                    execute_local(&res, &mut core.mem, &groups);
                    core.groups = groups;
                }
            }
            InstrClass::Transfer => {
                // Only global-memory transfers complete through here.
                self.cores[c].stats.transfer_busy += span;
                self.node_stats(tag).comm_time += span;
                if functional {
                    match &res {
                        Resolved::GLoad { dst, gaddr, len } => {
                            let data: Vec<i32> =
                                (0..*len as u64).map(|i| self.gmem.get(gaddr + i)).collect();
                            self.cores[c].mem.write(*dst, &data);
                        }
                        Resolved::GStore { gaddr, src, len } => {
                            let data = self.cores[c].mem.read(*src, *len);
                            for (i, v) in data.into_iter().enumerate() {
                                self.gmem.set(gaddr + i as u64, v);
                            }
                        }
                        _ => {}
                    }
                }
            }
            InstrClass::Scalar => unreachable!(),
        }
        self.retire(c);
        self.try_issue(c, ctx);
        self.try_advance(c, ctx);
    }

    fn retire(&mut self, c: usize) {
        let core = &mut self.cores[c];
        while matches!(core.rob.front(), Some(e) if e.state == State::Done) {
            core.rob.pop_front();
        }
    }
}

/// Runs compiled [`Program`]s on a configured chip.
///
/// See the crate docs for the machine model.
#[derive(Debug, Clone, Copy)]
pub struct Simulator<'a> {
    arch: &'a ArchConfig,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator over `arch`.
    pub fn new(arch: &'a ArchConfig) -> Self {
        Simulator { arch }
    }

    /// Runs `program` to completion.
    ///
    /// # Errors
    ///
    /// * [`SimError::InvalidProgram`] / [`SimError::Arch`] for malformed inputs,
    /// * [`SimError::Deadlock`] when transfers can never match,
    /// * [`SimError::Timeout`] at the `sim.max_cycles` horizon,
    /// * [`SimError::TagMismatch`] for inconsistent payload lengths.
    pub fn run(&self, program: &Program) -> Result<SimReport, SimError> {
        self.arch.validate()?;
        let limits = ProgramLimits {
            cores: self.arch.resources.cores(),
            xbars_per_core: self.arch.resources.xbars_per_core,
            local_mem_elems: self.arch.resources.local_mem_elems(),
            global_mem_elems: self.arch.resources.global_mem_elems(),
        };
        program.validate(&limits)?;

        let model = CostModel::new(self.arch);
        let clock = model.core_clock();
        let functional = self.arch.sim.functional;
        let dispatch_interval = SimTime::from_ps(
            clock.period().as_ps() / self.arch.timing.dispatch_width.max(1) as u64,
        );
        let decode_offset = clock.cycles_to_time(self.arch.timing.decode_cycles as u64);

        let n_cores = self.arch.resources.cores() as usize;
        let mut cores = Vec::with_capacity(n_cores);
        for cid in 0..n_cores {
            let cp = program.cores.get(cid).cloned().unwrap_or_default();
            let mut mem = Memory::default();
            if functional {
                for (start, values) in &cp.local_init {
                    mem.write(*start, values);
                }
            }
            cores.push(Core {
                pc: 0,
                regs: [0; 32],
                halted: cp.instrs.is_empty(),
                rob: VecDeque::new(),
                rob_size: self.arch.resources.rob_size as usize,
                next_dispatch: decode_offset,
                advance_pending: false,
                vector_busy: false,
                busy_xbars: Vec::new(),
                seq_next: 0,
                instrs: cp.instrs,
                groups: cp.groups,
                tags: cp.instr_tags,
                mem,
                stats: CoreStats::default(),
            });
        }
        let mut gmem = Memory::default();
        if functional {
            for (start, values) in &program.global_init {
                for (i, v) in values.iter().enumerate() {
                    gmem.set(start + i as u64, *v);
                }
            }
        }

        let world = World {
            cfg: self.arch.clone(),
            noc: Noc::for_arch(self.arch),
            gmem,
            cores,
            channels: HashMap::new(),
            functional,
            dispatch_interval,
            energy: EnergyBreakdown::default(),
            class_counts: [0; 4],
            instructions: 0,
            per_node: Vec::new(),
            error: None,
            trace_on: self.arch.sim.trace,
            trace: Vec::new(),
            finish_time: SimTime::ZERO,
        };

        let mut kernel = Kernel::new(world);
        for c in 0..n_cores {
            if !kernel.world().cores[c].halted {
                kernel.schedule_at(SimTime::ZERO, move |w: &mut World, ctx| {
                    w.try_advance(c, ctx)
                });
            }
        }

        let horizon = clock.cycles_to_time(self.arch.sim.max_cycles);
        let result = kernel.run_until(horizon);
        let events = kernel.stats().executed;
        let mut world = kernel.into_world();
        let now = world.finish_time;

        if let Some(err) = world.error.take() {
            return Err(err);
        }
        match result {
            RunResult::Horizon | RunResult::StepBudget => {
                return Err(SimError::Timeout {
                    max_cycles: self.arch.sim.max_cycles,
                })
            }
            RunResult::Stopped => unreachable!("stop implies a recorded error"),
            RunResult::Exhausted => {}
        }
        // Everything drained: all cores must be halted with empty ROBs,
        // otherwise some rendezvous never matched.
        let stuck: Vec<String> = world
            .cores
            .iter()
            .enumerate()
            .filter(|(_, core)| !core.halted || !core.rob.is_empty())
            .map(|(i, core)| {
                let rob: Vec<String> = core
                    .rob
                    .iter()
                    .map(|e| format!("{:?}/{:?}/{:?}", e.class, e.state, e.res))
                    .collect();
                format!(
                    "core{i}: pc={} halted={} pending={} next_dispatch={} next_instr={:?} rob=[{}]",
                    core.pc,
                    core.halted,
                    core.advance_pending,
                    core.next_dispatch,
                    core.instrs.get(core.pc as usize).map(|x| x.to_string()),
                    rob.join(" | ")
                )
            })
            .collect();
        if !stuck.is_empty() {
            let mut chans: Vec<String> = world
                .channels
                .iter()
                .filter(|(_, ch)| {
                    !ch.waiting_sends.is_empty()
                        || !ch.arrived.is_empty()
                        || ch.parked_recv.is_some()
                        || ch.in_flight > 0
                })
                .map(|((s, d, t), ch)| {
                    format!(
                        "ch({s}->{d},tag{t}): inflight={} arrived={} waitsend={} parkedrecv={}",
                        ch.in_flight,
                        ch.arrived.len(),
                        ch.waiting_sends.len(),
                        ch.parked_recv.is_some()
                    )
                })
                .collect();
            chans.sort();
            return Err(SimError::Deadlock {
                time: now,
                detail: format!("{}\n{}", stuck.join("; "), chans.join("\n")),
            });
        }

        let latency = now;
        world.energy.static_energy = CostModel::new(&world.cfg).static_energy(latency);
        let per_core = world.cores.iter().map(|c| c.stats).collect();
        Ok(SimReport {
            latency,
            energy: world.energy,
            instructions: world.instructions,
            class_counts: world.class_counts,
            per_core,
            per_node: world.per_node,
            events,
            trace: world.trace,
            gmem: functional.then_some(world.gmem),
            locals: functional.then(|| world.cores.into_iter().map(|c| c.mem).collect()),
        })
    }
}

//! Functional execution of resolved instructions.
//!
//! Integer semantics are shared with `pimsim-nn`'s golden model (saturating
//! adds, i64 MVM accumulation clamped to i32, truncating average pooling,
//! Q8.8 sigmoid/tanh) so compiled programs can be checked bit-exactly.

use pimsim_isa::{GroupConfig, PoolOp, VBinOp, VImmOp, VUnOp};
use pimsim_nn::{fixed_sigmoid, fixed_tanh};

use crate::resolve::Resolved;

/// A zero-initialized, lazily grown local memory of 32-bit elements.
#[derive(Debug, Default, Clone)]
pub struct Memory {
    data: Vec<i32>,
}

impl Memory {
    /// Reads `len` elements at `addr` (reads past the high-water mark are
    /// zero, matching the zero-initialized scratchpad assumption).
    ///
    /// The scan runs in `u64` so `addr + len` near `u32::MAX` cannot wrap
    /// (a wrap would panic in debug builds and silently alias address 0 in
    /// release builds).
    pub fn read(&self, addr: u32, len: u32) -> Vec<i32> {
        (addr as u64..addr as u64 + len as u64)
            .map(|a| {
                usize::try_from(a)
                    .ok()
                    .and_then(|a| self.data.get(a))
                    .copied()
                    .unwrap_or(0)
            })
            .collect()
    }

    /// Reads a single element.
    pub fn get(&self, addr: u64) -> i32 {
        self.data.get(addr as usize).copied().unwrap_or(0)
    }

    /// Writes `values` at `addr`, growing as needed.
    pub fn write(&mut self, addr: u32, values: &[i32]) {
        let end = addr as usize + values.len();
        if self.data.len() < end {
            self.data.resize(end, 0);
        }
        self.data[addr as usize..end].copy_from_slice(values);
    }

    /// Writes a single element at a 64-bit address.
    pub fn set(&mut self, addr: u64, value: i32) {
        let idx = addr as usize;
        if self.data.len() <= idx {
            self.data.resize(idx + 1, 0);
        }
        self.data[idx] = value;
    }
}

fn sat(v: i64) -> i32 {
    v.clamp(i32::MIN as i64, i32::MAX as i64) as i32
}

/// Executes a vector/matrix instruction's data movement on `mem`.
/// Transfers are handled by the machine (they touch two memories).
pub fn execute_local(r: &Resolved, mem: &mut Memory, groups: &[GroupConfig]) {
    match r {
        Resolved::Mvm {
            group, dst, src, ..
        } => {
            let g = &groups[group.as_usize()];
            if let Some(w) = &g.weights {
                let input = mem.read(*src, g.input_len);
                let out = w.mvm(&input);
                mem.write(*dst, &out);
            }
        }
        Resolved::VBin { op, dst, a, b, len } => {
            let va = mem.read(*a, *len);
            let vb = mem.read(*b, *len);
            let out: Vec<i32> = va
                .iter()
                .zip(&vb)
                .map(|(&x, &y)| match op {
                    VBinOp::Add => x.saturating_add(y),
                    VBinOp::Sub => x.saturating_sub(y),
                    VBinOp::Mul => sat(x as i64 * y as i64),
                    VBinOp::Max => x.max(y),
                    VBinOp::Min => x.min(y),
                })
                .collect();
            mem.write(*dst, &out);
        }
        Resolved::VImm {
            op,
            dst,
            src,
            imm,
            len,
        } => {
            let v = mem.read(*src, *len);
            let out: Vec<i32> = v
                .iter()
                .map(|&x| match op {
                    VImmOp::Add => x.saturating_add(*imm),
                    VImmOp::Mul => sat(x as i64 * *imm as i64),
                    VImmOp::Sra => x >> (*imm as u32 & 31),
                })
                .collect();
            mem.write(*dst, &out);
        }
        Resolved::VUn { op, dst, src, len } => {
            let v = mem.read(*src, *len);
            let out: Vec<i32> = v
                .iter()
                .map(|&x| match op {
                    VUnOp::Relu => x.max(0),
                    VUnOp::Sigmoid => fixed_sigmoid(x),
                    VUnOp::Tanh => fixed_tanh(x),
                    VUnOp::Copy => x,
                    VUnOp::Neg => x.saturating_neg(),
                    VUnOp::Abs => x.saturating_abs(),
                })
                .collect();
            mem.write(*dst, &out);
        }
        Resolved::VFill { dst, value, len } => {
            mem.write(*dst, &vec![*value; *len as usize]);
        }
        Resolved::VCopy2d {
            dst,
            src,
            block_len,
            blocks,
            src_stride,
            dst_stride,
        } => {
            for b in 0..*blocks {
                let s = (*src as i64 + b as i64 * *src_stride as i64).max(0) as u32;
                let d = (*dst as i64 + b as i64 * *dst_stride as i64).max(0) as u32;
                let block = mem.read(s, *block_len);
                mem.write(d, &block);
            }
        }
        Resolved::VPool {
            op,
            dst,
            src,
            channels,
            win_w,
            win_h,
            row_stride,
        } => {
            let mut out = vec![0i32; *channels as usize];
            for (c, o) in out.iter_mut().enumerate() {
                let mut m = i32::MIN;
                let mut sum = 0i64;
                for wy in 0..*win_h {
                    for wx in 0..*win_w {
                        let a = *src as i64
                            + wy as i64 * *row_stride as i64
                            + (wx * *channels) as i64
                            + c as i64;
                        let v = mem.get(a.max(0) as u64);
                        m = m.max(v);
                        sum += v as i64;
                    }
                }
                *o = match op {
                    PoolOp::Max => m,
                    PoolOp::Avg => sat(sum / (*win_w as i64 * *win_h as i64).max(1)),
                };
            }
            mem.write(*dst, &out);
        }
        Resolved::Send { .. }
        | Resolved::Recv { .. }
        | Resolved::GLoad { .. }
        | Resolved::GStore { .. } => {
            unreachable!("transfers are executed by the machine, not execute_local")
        }
    }
}

/// Moves a matched send/recv payload from `src_mem` to `dst_mem` with the
/// receiver's (possibly strided) placement.
#[cfg(test)]
pub fn execute_transfer(
    src_mem: &Memory,
    dst_mem: &mut Memory,
    src: u32,
    len: u32,
    dst: u32,
    block_len: u32,
    dst_stride: i32,
) {
    let payload = src_mem.read(src, len);
    if block_len == 0 {
        return;
    }
    for (b, chunk) in payload.chunks(block_len as usize).enumerate() {
        let d = (dst as i64 + b as i64 * dst_stride as i64).max(0) as u32;
        dst_mem.write(d, chunk);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimsim_isa::{GroupId, WeightMatrix};

    #[test]
    fn memory_reads_unwritten_as_zero() {
        let mem = Memory::default();
        assert_eq!(mem.read(100, 3), vec![0, 0, 0]);
    }

    #[test]
    fn memory_read_near_u32_max_does_not_wrap() {
        // Regression: `addr + len` used to be computed in u32, panicking in
        // debug builds (and wrapping to address 0 in release) for reads
        // ending past u32::MAX.
        let mut mem = Memory::default();
        mem.write(0, &[41, 42, 43]);
        assert_eq!(mem.read(u32::MAX - 2, 8), vec![0; 8]);
        // The wrap would have aliased the data at address 0.
        assert!(mem.read(u32::MAX, 4).iter().all(|&v| v == 0));
    }

    #[test]
    fn memory_roundtrip() {
        let mut mem = Memory::default();
        mem.write(10, &[1, -2, 3]);
        assert_eq!(mem.read(9, 5), vec![0, 1, -2, 3, 0]);
        mem.set(1000, 42);
        assert_eq!(mem.get(1000), 42);
    }

    #[test]
    fn vbin_semantics() {
        let mut mem = Memory::default();
        mem.write(0, &[i32::MAX, 5, -3]);
        mem.write(10, &[1, 7, -4]);
        execute_local(
            &Resolved::VBin {
                op: VBinOp::Add,
                dst: 20,
                a: 0,
                b: 10,
                len: 3,
            },
            &mut mem,
            &[],
        );
        assert_eq!(mem.read(20, 3), vec![i32::MAX, 12, -7]);
        execute_local(
            &Resolved::VBin {
                op: VBinOp::Max,
                dst: 30,
                a: 0,
                b: 10,
                len: 3,
            },
            &mut mem,
            &[],
        );
        assert_eq!(mem.read(30, 3), vec![i32::MAX, 7, -3]);
    }

    #[test]
    fn mvm_uses_group_weights() {
        let mut mem = Memory::default();
        mem.write(0, &[5, 6]);
        let g = GroupConfig::new(GroupId(0), 2, 2, vec![0])
            .with_weights(WeightMatrix::new(2, 2, vec![1, 3, 2, 4]).unwrap())
            .unwrap();
        execute_local(
            &Resolved::Mvm {
                group: GroupId(0),
                dst: 10,
                src: 0,
                len: 2,
            },
            &mut mem,
            &[g],
        );
        assert_eq!(mem.read(10, 2), vec![17, 39]);
    }

    #[test]
    fn vpool_avg_truncates() {
        let mut mem = Memory::default();
        // 2x2 window, 1 channel, laid out rows of 2.
        mem.write(0, &[1, 2]);
        mem.write(2, &[2, 2]);
        execute_local(
            &Resolved::VPool {
                op: PoolOp::Avg,
                dst: 10,
                src: 0,
                channels: 1,
                win_w: 2,
                win_h: 2,
                row_stride: 2,
            },
            &mut mem,
            &[],
        );
        assert_eq!(mem.read(10, 1), vec![1]); // 7/4 -> 1
    }

    #[test]
    fn vcopy2d_strides() {
        let mut mem = Memory::default();
        mem.write(0, &[1, 2, 3, 4, 5, 6]);
        execute_local(
            &Resolved::VCopy2d {
                dst: 100,
                src: 0,
                block_len: 2,
                blocks: 3,
                src_stride: 2,
                dst_stride: 4,
            },
            &mut mem,
            &[],
        );
        assert_eq!(mem.read(100, 10), vec![1, 2, 0, 0, 3, 4, 0, 0, 5, 6]);
    }

    #[test]
    fn transfer_with_interleave() {
        let src = {
            let mut m = Memory::default();
            m.write(0, &[1, 2, 3, 4]);
            m
        };
        let mut dst = Memory::default();
        execute_transfer(&src, &mut dst, 0, 4, 100, 2, 5);
        assert_eq!(dst.read(100, 8), vec![1, 2, 0, 0, 0, 3, 4, 0]);
    }

    #[test]
    fn activations_match_golden_helpers() {
        let mut mem = Memory::default();
        mem.write(0, &[0, -100]);
        execute_local(
            &Resolved::VUn {
                op: VUnOp::Sigmoid,
                dst: 10,
                src: 0,
                len: 2,
            },
            &mut mem,
            &[],
        );
        assert_eq!(mem.read(10, 2), vec![fixed_sigmoid(0), fixed_sigmoid(-100)]);
    }
}

//! Simulation reports: latency, energy, power and per-layer attribution.

use pimsim_arch::Energy;
use pimsim_event::SimTime;

use crate::exec::Memory;

/// Energy by component, picojoule-backed [`Energy`] values.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Crossbar arrays + DACs + ADCs.
    pub matrix: Energy,
    /// Vector execution units (incl. their local-memory traffic).
    pub vector: Energy,
    /// NoC wires/routers and global memory.
    pub transfer: Energy,
    /// Scalar ALUs.
    pub scalar: Energy,
    /// Instruction fetch/decode overhead.
    pub frontend: Energy,
    /// Static (leakage + clocking) energy over the whole run.
    pub static_energy: Energy,
}

impl EnergyBreakdown {
    /// Total energy.
    pub fn total(&self) -> Energy {
        self.matrix + self.vector + self.transfer + self.scalar + self.frontend + self.static_energy
    }
}

/// Per-core activity counters.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CoreStats {
    /// Instructions dispatched (all classes).
    pub dispatched: u64,
    /// Summed occupancy of the matrix unit (concurrent MVMs both count).
    pub matrix_busy: SimTime,
    /// Summed occupancy of the vector unit.
    pub vector_busy: SimTime,
    /// Summed occupancy of the transfer unit (rendezvous waits included).
    pub transfer_busy: SimTime,
}

/// Per-network-node (layer) attribution, keyed by the program's
/// instruction tags. This backs the paper's Fig. 5 *communication latency
/// ratio* analysis.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NodeStats {
    /// Instructions executed for this node.
    pub instructions: u64,
    /// Matrix-unit time attributed to this node.
    pub matrix_time: SimTime,
    /// Vector-unit time attributed to this node.
    pub vector_time: SimTime,
    /// Transfer time attributed to this node — from issue to completion,
    /// so synchronization waiting is included (the cost the paper argues
    /// MNSIM2.0's idealistic model hides).
    pub comm_time: SimTime,
    /// Dynamic energy attributed to this node (matrix + vector + transfer).
    pub energy: Energy,
}

impl NodeStats {
    /// Fraction of this node's attributed time spent communicating.
    pub fn comm_ratio(&self) -> f64 {
        let total = self.matrix_time + self.vector_time + self.comm_time;
        if total.is_zero() {
            0.0
        } else {
            self.comm_time.as_ps() as f64 / total.as_ps() as f64
        }
    }
}

/// How the run's work was split between the two engines: events the
/// kernel dispatched through live machine handlers vs events replayed
/// from a pre-computed (placed) schedule, and how many static regions
/// were compiled, reused, or declined. The event engine reports all
/// events as dispatched and every region counter zero.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScheduleStats {
    /// Events executed through live machine handlers (including hybrid
    /// boundary and pass-through events).
    pub events_dispatched: u64,
    /// Events replayed from a pre-placed schedule (no handler ran).
    pub events_placed: u64,
    /// Static regions compiled by the placer (memo misses).
    pub regions_compiled: u64,
    /// Region entries satisfied from the schedule memo (reuse hits).
    pub regions_reused: u64,
    /// Region entry points declined (window empty or too dynamic),
    /// falling back to the event kernel.
    pub regions_fallback: u64,
}

/// One entry of the optional instruction trace (`sim.trace = true`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// Completion (retirement-eligible) time of the instruction.
    pub time: SimTime,
    /// Core that executed it.
    pub core: u16,
    /// The instruction, rendered in canonical assembly.
    pub instr: String,
}

/// The result of one simulation run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// End-to-end inference latency.
    pub latency: SimTime,
    /// Energy by component.
    pub energy: EnergyBreakdown,
    /// Dynamic instruction count.
    pub instructions: u64,
    /// Dynamic counts by class `[matrix, vector, transfer, scalar]`.
    pub class_counts: [u64; 4],
    /// Per-core activity.
    pub per_core: Vec<CoreStats>,
    /// Per-node (tag) attribution; index = tag value.
    pub per_node: Vec<NodeStats>,
    /// Discrete events processed by the kernel.
    pub events: u64,
    /// How the events were produced: dispatched live vs replayed from a
    /// compiled schedule (all-dispatched under the event engine).
    pub schedule: ScheduleStats,
    /// Instruction completion trace (only with `sim.trace = true`; capped
    /// at [`TRACE_CAP`] entries).
    pub trace: Vec<TraceEntry>,
    /// Final memories (functional runs only).
    pub(crate) gmem: Option<Memory>,
    pub(crate) locals: Option<Vec<Memory>>,
}

/// Upper bound on recorded trace entries (protects memory on long runs).
pub const TRACE_CAP: usize = 200_000;

impl SimReport {
    /// Average power over the run, in watts.
    pub fn avg_power_w(&self) -> f64 {
        self.energy.total().power_over(self.latency)
    }

    /// Reads final global memory (zeros when not simulated functionally).
    pub fn read_global(&self, addr: u64, len: u32) -> Vec<i32> {
        match &self.gmem {
            Some(m) => (0..len as u64).map(|i| m.get(addr + i)).collect(),
            None => vec![0; len as usize],
        }
    }

    /// Reads a core's final local memory (zeros when not functional).
    pub fn read_local(&self, core: u16, addr: u32, len: u32) -> Vec<i32> {
        match &self.locals {
            Some(ms) => ms
                .get(core as usize)
                .map(|m| m.read(addr, len))
                .unwrap_or_else(|| vec![0; len as usize]),
            None => vec![0; len as usize],
        }
    }

    /// Communication-latency ratio of node `tag` (0.0 if never seen).
    pub fn comm_ratio(&self, tag: u16) -> f64 {
        self.per_node
            .get(tag as usize)
            .map(NodeStats::comm_ratio)
            .unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_totals() {
        let b = EnergyBreakdown {
            matrix: Energy::from_pj(1.0),
            vector: Energy::from_pj(2.0),
            transfer: Energy::from_pj(3.0),
            scalar: Energy::from_pj(4.0),
            frontend: Energy::from_pj(5.0),
            static_energy: Energy::from_pj(6.0),
        };
        assert!((b.total().as_pj() - 21.0).abs() < 1e-12);
    }

    #[test]
    fn comm_ratio_bounds() {
        let mut n = NodeStats::default();
        assert_eq!(n.comm_ratio(), 0.0);
        n.comm_time = SimTime::from_ns(30);
        n.matrix_time = SimTime::from_ns(50);
        n.vector_time = SimTime::from_ns(20);
        assert!((n.comm_ratio() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn report_reads_default_to_zero() {
        let r = SimReport {
            latency: SimTime::from_ns(10),
            energy: EnergyBreakdown::default(),
            instructions: 0,
            class_counts: [0; 4],
            per_core: vec![],
            per_node: vec![],
            events: 0,
            schedule: ScheduleStats::default(),
            trace: vec![],
            gmem: None,
            locals: None,
        };
        assert_eq!(r.read_global(5, 3), vec![0, 0, 0]);
        assert_eq!(r.read_local(0, 5, 2), vec![0, 0]);
        assert_eq!(r.avg_power_w(), 0.0);
        assert_eq!(r.comm_ratio(9), 0.0);
    }
}

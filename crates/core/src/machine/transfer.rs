//! The rendezvous transfer fabric: flow-controlled `(sender, receiver,
//! tag)` channels with credit-based backpressure, plus global-memory
//! traffic through the NoC.
//!
//! A `SEND` occupies its core's transfer unit until the payload's tail
//! flit has crossed the mesh *and* been accepted on the receiving side
//! (rendezvous semantics); a `RECV` parks until a message arrives. Each
//! channel is split round-robin over `noc.virtual_channels` virtual
//! channels, and each VC holds at most `noc.channel_credits` messages in
//! flight or queued, so senders feel buffer pressure — the synchronization
//! cost the paper shows behaviour-level models hide. A single VC (the
//! default) is exactly the pre-VC credit pool. Credit conservation is a
//! hard invariant: any count that would underflow or exceed its pool stops
//! the run with [`SimError::Internal`] instead of decaying into a mystery
//! deadlock.
//!
//! Transfer *timing* is positional (policy-routed mesh walk, per-link
//! occupancy, controller queue) and comes from [`Noc`](crate::noc::Noc)
//! walks priced by the per-machine [`NocCosts`](crate::noc::NocCosts)
//! constants; the [`TimingModel`](super::TimingModel) seam covers the
//! execution units only. A [`Pending`] carries its `(tag, len)` from
//! issue time, so launching or kicking a transfer never rescans the ROB.

use std::collections::{HashMap, VecDeque};

use pimsim_event::SimTime;

use super::error::SimError;
use super::{Ctx, Machine, MachineEvent};
use crate::resolve::Resolved;

/// A flow-control channel identifier: `(sender, receiver, tag)`.
pub(crate) type ChannelKey = (u16, u16, u16);

/// One pending side of a transfer channel. Everything the fabric needs
/// to launch or match the transfer later is captured at issue time —
/// `tag` for telemetry attribution, `len` for credit kicks and length
/// checks, and `vc` (the round-robin virtual-channel assignment, fixed at
/// issue) — so the hot path never walks the ROB to rediscover them.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Pending {
    pub(crate) core: u16,
    pub(crate) seq: u64,
    pub(crate) tag: u16,
    pub(crate) len: u32,
    pub(crate) vc: u32,
}

/// A message sitting in a receiver's credit queue.
#[derive(Debug)]
pub(crate) struct ArrivedMsg {
    pub(crate) len: u32,
    /// The virtual channel whose credit the message still holds.
    pub(crate) vc: u32,
    /// Captured payload (functional runs only).
    pub(crate) data: Vec<i32>,
}

/// One `(sender, receiver, tag)` flow-controlled channel, split over the
/// configured virtual channels.
#[derive(Debug)]
pub(crate) struct Channel {
    /// Messages delivered but not yet consumed by a `RECV`, in arrival
    /// order (the receive order is the channel's, not a VC's).
    pub(crate) arrived: VecDeque<ArrivedMsg>,
    /// Messages currently crossing the mesh (all VCs).
    pub(crate) in_flight: u32,
    /// Credits in use per virtual channel: messages launched but not yet
    /// consumed by a `RECV`, whether on the wire or queued at the
    /// receiver. Each entry is bounded by `noc.channel_credits`.
    pub(crate) vc_used: Vec<u32>,
    /// Round-robin cursor for the next send's VC assignment.
    pub(crate) next_vc: u32,
    /// Sends waiting for a credit on their assigned VC, in issue order.
    pub(crate) waiting_sends: VecDeque<Pending>,
    /// The receiver's posted `RECV` awaiting a message (at most one:
    /// the transfer unit is single-occupancy).
    pub(crate) parked_recv: Option<Pending>,
}

impl Channel {
    fn new(vcs: u32) -> Channel {
        Channel {
            arrived: VecDeque::new(),
            in_flight: 0,
            vc_used: vec![0; vcs as usize],
            next_vc: 0,
            waiting_sends: VecDeque::new(),
            parked_recv: None,
        }
    }

    /// `true` if anything is queued, parked, or on the wire.
    fn is_active(&self) -> bool {
        !self.waiting_sends.is_empty()
            || !self.arrived.is_empty()
            || self.parked_recv.is_some()
            || self.in_flight > 0
    }

    /// Assigns the next send's virtual channel (round-robin at issue time).
    fn assign_vc(&mut self) -> u32 {
        let vc = self.next_vc;
        self.next_vc = (vc + 1) % self.vc_used.len() as u32;
        vc
    }
}

/// All rendezvous channels of the chip.
#[derive(Debug)]
pub(crate) struct TransferFabric {
    channels: HashMap<ChannelKey, Channel>,
    /// Virtual channels per rendezvous channel (`noc.virtual_channels`).
    vcs: u32,
}

impl TransferFabric {
    /// An empty fabric whose channels carry `vcs` virtual channels each.
    pub(crate) fn new(vcs: u32) -> TransferFabric {
        debug_assert!(vcs > 0, "validated: at least one virtual channel");
        TransferFabric {
            channels: HashMap::new(),
            vcs,
        }
    }

    /// The channel for `key`, created empty on first touch.
    pub(crate) fn channel(&mut self, key: ChannelKey) -> &mut Channel {
        let vcs = self.vcs;
        self.channels
            .entry(key)
            .or_insert_with(|| Channel::new(vcs))
    }

    /// Names every channel with a transfer that can no longer match —
    /// the `(sender, receiver, tag)` sites a deadlocked run leaves behind.
    pub(crate) fn unmatched_sites(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .channels
            .iter()
            .filter(|(_, ch)| ch.is_active())
            .map(|((s, d, t), ch)| {
                let mut what = Vec::new();
                let undelivered = ch.arrived.len() as u32 + ch.in_flight;
                if undelivered > 0 {
                    what.push(format!("{undelivered} sent message(s) never received"));
                }
                if !ch.waiting_sends.is_empty() {
                    what.push(format!(
                        "{} send(s) blocked on channel credits",
                        ch.waiting_sends.len()
                    ));
                }
                if ch.parked_recv.is_some() {
                    what.push("a receive waiting on a send that never comes".to_string());
                }
                format!("core{s} -> core{d} tag={t}: {}", what.join(", "))
            })
            .collect();
        out.sort();
        out
    }

    /// Sorted one-line summaries of channels still holding traffic, for
    /// deadlock diagnostics.
    pub(crate) fn congestion_report(&self) -> Vec<String> {
        let mut chans: Vec<String> = self
            .channels
            .iter()
            .filter(|(_, ch)| ch.is_active())
            .map(|((s, d, t), ch)| {
                format!(
                    "ch({s}->{d},tag{t}): inflight={} arrived={} waitsend={} parkedrecv={} vc_used={:?}",
                    ch.in_flight,
                    ch.arrived.len(),
                    ch.waiting_sends.len(),
                    ch.parked_recv.is_some(),
                    ch.vc_used
                )
            })
            .collect();
        chans.sort();
        chans
    }
}

impl Machine<'_> {
    /// Starts an issued transfer-class instruction. `tag` is the entry's
    /// node tag, captured by the issue logic so the transfer path never
    /// rescans the ROB for it.
    pub(crate) fn start_transfer(
        &mut self,
        c: usize,
        seq: u64,
        tag: u16,
        res: Resolved,
        now: SimTime,
        ctx: &mut Ctx,
    ) {
        match res {
            Resolved::Send {
                peer,
                len,
                tag: chan_tag,
                ..
            } => {
                let credits = self.cfg.noc.channel_credits;
                let key = (c as u16, peer, chan_tag);
                let chan = self.fabric.channel(key);
                // The VC assignment is fixed here, at issue time, by the
                // round-robin cursor — a send keeps its VC while waiting.
                let vc = chan.assign_vc();
                let pending = Pending {
                    core: c as u16,
                    seq,
                    tag,
                    len,
                    vc,
                };
                if chan.vc_used[vc as usize] >= credits {
                    chan.waiting_sends.push_back(pending);
                } else if self.charge_credit(key, vc, ctx) {
                    self.launch_send(key, pending, now, ctx);
                }
            }
            Resolved::Recv {
                peer,
                block_len,
                blocks,
                tag: chan_tag,
                ..
            } => {
                let key = (peer, c as u16, chan_tag);
                let recv_len = block_len * blocks;
                let chan = self.fabric.channel(key);
                if let Some(msg) = chan.arrived.pop_front() {
                    if msg.len != recv_len {
                        let detail = format!(
                            "send core{peer} len {} vs recv core{c} len {recv_len} (tag {chan_tag})",
                            msg.len
                        );
                        self.fail(SimError::TagMismatch { detail }, ctx);
                        return;
                    }
                    let vc = msg.vc;
                    self.finish_recv(c, seq, msg, ctx);
                    if self.error.is_some() {
                        return;
                    }
                    // The consumed message's VC credit freed: launch that
                    // VC's oldest waiting send, if any.
                    if !self.release_credit(key, vc, ctx) {
                        return;
                    }
                    self.kick_channel(key, vc, now, ctx);
                } else {
                    debug_assert!(
                        chan.parked_recv.is_none(),
                        "transfer unit is single-occupancy"
                    );
                    chan.parked_recv = Some(Pending {
                        core: c as u16,
                        seq,
                        tag,
                        len: recv_len,
                        // Receives hold no credit; the field only carries
                        // meaning on the send side.
                        vc: 0,
                    });
                }
            }
            Resolved::GLoad { len, .. } | Resolved::GStore { len, .. } => {
                let costs = &self.costs;
                let hops = costs.hops(c as u16, 0) + 1;
                let flits = costs.flits_for_elems(len);
                let e_txn = costs.noc_energy(flits, hops) + costs.global_mem(len).energy;
                let end = self.noc.memory_access(c as u16, len, now, &self.costs);
                self.telemetry.energy.transfer += e_txn;
                self.telemetry.node(tag).energy += e_txn;
                ctx.schedule_at(end, MachineEvent::Complete { core: c, seq });
            }
            other => unreachable!("transfer class mismatch: {other:?}"),
        }
    }

    /// Puts a send on the wire; it deposits into the receiver's queue at
    /// the tail-flit arrival time.
    fn launch_send(&mut self, key: ChannelKey, send: Pending, now: SimTime, ctx: &mut Ctx) {
        let e_txn = self.costs.message_energy(key.0, key.1, send.len);
        let end = self.noc.message(key.0, key.1, send.len, now, &self.costs);
        self.telemetry.energy.transfer += e_txn;
        self.telemetry.node(send.tag).energy += e_txn;
        ctx.schedule_at(end, MachineEvent::Deposit { key, send });
    }

    /// Tail flit arrived at the receiver: the send completes
    /// ("synchronized"), and either a parked `RECV` consumes the message
    /// immediately or it waits in the credit queue.
    pub(crate) fn deposit(&mut self, key: ChannelKey, send: Pending, ctx: &mut Ctx) {
        if self.error.is_some() {
            return;
        }
        let len = send.len;
        // Capture the payload while the sender's buffer is still hazard-protected.
        let data = if self.functional {
            let src = match self.cores[send.core as usize].find(send.seq) {
                Some(e) => match e.res {
                    Resolved::Send { src, .. } => src,
                    _ => unreachable!("send side mismatch"),
                },
                // This used to be a silent `return`, leaving the channel's
                // in_flight count and the sender's transfer unit stuck
                // forever — a masked invariant break that surfaced later
                // as an unexplainable deadlock.
                None => {
                    let detail = format!(
                        "deposit on ch({}->{},tag{}) found no ROB entry for sender core{} seq {}",
                        key.0, key.1, key.2, send.core, send.seq
                    );
                    self.fail(SimError::Internal { detail }, ctx);
                    return;
                }
            };
            self.cores[send.core as usize].mem.read(src, len)
        } else {
            Vec::new()
        };
        // Complete the send side.
        self.finish_transfer_side(send.core as usize, send.seq, ctx);
        if self.error.is_some() {
            return;
        }
        let chan = self.fabric.channel(key);
        if chan.in_flight == 0 {
            let detail = format!(
                "deposit on ch({}->{},tag{}) with no message in flight",
                key.0, key.1, key.2
            );
            self.fail(SimError::Internal { detail }, ctx);
            return;
        }
        chan.in_flight -= 1;
        if let Some(recv) = chan.parked_recv.take() {
            if recv.len != len {
                let detail = format!(
                    "send core{} len {len} vs recv core{} len {} (tag {})",
                    key.0, key.1, recv.len, key.2
                );
                self.fail(SimError::TagMismatch { detail }, ctx);
                return;
            }
            let vc = send.vc;
            let msg = ArrivedMsg { len, vc, data };
            self.finish_recv(recv.core as usize, recv.seq, msg, ctx);
            if self.error.is_some() {
                return;
            }
            // Consumed on arrival: the send's VC credit frees immediately.
            if !self.release_credit(key, vc, ctx) {
                return;
            }
            self.kick_channel(key, vc, ctx.now(), ctx);
        } else {
            self.fabric.channel(key).arrived.push_back(ArrivedMsg {
                len,
                vc: send.vc,
                data,
            });
        }
    }

    /// Takes one credit on `key`'s virtual channel `vc` for a launching
    /// send. Exceeding the configured pool is a conservation break:
    /// reported as [`SimError::Internal`] (returning `false`) rather than
    /// silently over-subscribing the receiver's buffer.
    fn charge_credit(&mut self, key: ChannelKey, vc: u32, ctx: &mut Ctx) -> bool {
        let credits = self.cfg.noc.channel_credits;
        let chan = self.fabric.channel(key);
        let used = &mut chan.vc_used[vc as usize];
        if *used >= credits {
            let detail = format!(
                "credit overflow on ch({}->{},tag{}) vc{vc}: {} of {credits} already in use",
                key.0, key.1, key.2, *used
            );
            self.fail(SimError::Internal { detail }, ctx);
            return false;
        }
        *used += 1;
        chan.in_flight += 1;
        true
    }

    /// Releases the credit a consumed message held on `key`'s virtual
    /// channel `vc`. Underflow is a conservation break: reported as
    /// [`SimError::Internal`] (returning `false`) instead of wrapping into
    /// a phantom credit pool.
    fn release_credit(&mut self, key: ChannelKey, vc: u32, ctx: &mut Ctx) -> bool {
        let chan = self.fabric.channel(key);
        let used = &mut chan.vc_used[vc as usize];
        if *used == 0 {
            let detail = format!(
                "credit release on ch({}->{},tag{}) vc{vc} with no credit in use",
                key.0, key.1, key.2
            );
            self.fail(SimError::Internal { detail }, ctx);
            return false;
        }
        *used -= 1;
        true
    }

    /// A credit became free on `vc`: launch that VC's oldest waiting
    /// send, if any.
    fn kick_channel(&mut self, key: ChannelKey, vc: u32, now: SimTime, ctx: &mut Ctx) {
        let credits = self.cfg.noc.channel_credits;
        let launch = {
            let chan = self.fabric.channel(key);
            if chan.vc_used[vc as usize] >= credits {
                None
            } else {
                chan.waiting_sends
                    .iter()
                    .position(|p| p.vc == vc)
                    .and_then(|i| chan.waiting_sends.remove(i))
            }
        };
        if let Some(send) = launch {
            if self.charge_credit(key, send.vc, ctx) {
                self.launch_send(key, send, now, ctx);
            }
        }
    }

    /// Completes a `RECV`: writes the payload and retires the entry.
    fn finish_recv(&mut self, c: usize, seq: u64, msg: ArrivedMsg, ctx: &mut Ctx) {
        if self.functional {
            let params = self.cores[c].find(seq).map(|e| match e.res {
                Resolved::Recv {
                    dst,
                    block_len,
                    dst_stride,
                    ..
                } => (dst, block_len, dst_stride),
                _ => unreachable!("recv side mismatch"),
            });
            if let Some((dst, block_len, dst_stride)) = params {
                if block_len > 0 {
                    let capacity = self.cfg.resources.local_mem_elems() as i64;
                    for (b, chunk) in msg.data.chunks(block_len as usize).enumerate() {
                        let d = dst as i64 + b as i64 * dst_stride as i64;
                        // A destination below address 0 used to clamp to 0
                        // and silently overwrite whatever lived there; one
                        // past the configured scratchpad would grow the
                        // functional memory without bound. Both are program
                        // bugs and must fail.
                        if d < 0 || d + chunk.len() as i64 > capacity {
                            let detail = format!(
                                "strided recv block {b} spans [{d}, {}) \
                                 (dst {dst}, stride {dst_stride}), outside the \
                                 {capacity}-element local memory",
                                d + chunk.len() as i64
                            );
                            self.fail(
                                SimError::MemoryFault {
                                    core: c as u16,
                                    detail,
                                },
                                ctx,
                            );
                            return;
                        }
                        self.cores[c].mem.write(d as u32, chunk);
                    }
                }
            }
        }
        self.finish_transfer_side(c, seq, ctx);
    }

    /// Marks one transfer entry done, releases the unit, updates stats,
    /// retires, and lets the core continue.
    fn finish_transfer_side(&mut self, c: usize, seq: u64, ctx: &mut Ctx) {
        let now = ctx.now();
        self.finish_time = self.finish_time.max(now);
        let (tag, span, text) = {
            let Some(e) = self.cores[c].find(seq) else {
                // A completion whose ROB entry vanished is an invariant
                // break; report it instead of quietly dropping the
                // retirement (which would wedge the core).
                let detail =
                    format!("transfer completion on core{c} found no ROB entry for seq {seq}");
                self.fail(SimError::Internal { detail }, ctx);
                return;
            };
            e.state = super::rob::State::Done;
            (e.tag, now.saturating_sub(e.issue_at), e.text.take())
        };
        if let Some(t) = text {
            self.telemetry.record_trace(now, c as u16, t);
        }
        self.cores[c].stats.transfer_busy += span;
        self.telemetry.node(tag).comm_time += span;
        self.cores[c].retire();
        self.try_issue(c, ctx);
        self.try_advance(c, ctx);
    }
}

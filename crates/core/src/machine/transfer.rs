//! The rendezvous transfer fabric: flow-controlled `(sender, receiver,
//! tag)` channels with credit-based backpressure, plus global-memory
//! traffic through the NoC.
//!
//! A `SEND` occupies its core's transfer unit until the payload's tail
//! flit has crossed the mesh *and* been accepted on the receiving side
//! (rendezvous semantics); a `RECV` parks until a message arrives. Each
//! channel holds at most `noc.channel_credits` messages in flight or
//! queued, so senders feel buffer pressure — the synchronization cost the
//! paper shows behaviour-level models hide.
//!
//! Transfer *timing* is positional (XY route, per-link occupancy,
//! controller queue) and comes from [`Noc`](crate::noc::Noc) walks priced
//! by the shared [`CostModel`]; the [`TimingModel`](super::TimingModel)
//! seam covers the execution units only.

use std::collections::{HashMap, VecDeque};

use pimsim_arch::model::CostModel;
use pimsim_event::SimTime;

use super::error::SimError;
use super::{Ctx, Machine, MachineEvent};
use crate::resolve::Resolved;

/// A flow-control channel identifier: `(sender, receiver, tag)`.
pub(crate) type ChannelKey = (u16, u16, u16);

/// One pending side of a transfer channel.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Pending {
    pub(crate) core: u16,
    pub(crate) seq: u64,
}

/// A message sitting in a receiver's credit queue.
#[derive(Debug)]
pub(crate) struct ArrivedMsg {
    pub(crate) len: u32,
    /// Captured payload (functional runs only).
    pub(crate) data: Vec<i32>,
}

/// One `(sender, receiver, tag)` flow-controlled channel.
#[derive(Debug, Default)]
pub(crate) struct Channel {
    /// Messages delivered but not yet consumed by a `RECV`.
    pub(crate) arrived: VecDeque<ArrivedMsg>,
    /// Messages currently crossing the mesh.
    pub(crate) in_flight: u32,
    /// Sends waiting for a credit.
    pub(crate) waiting_sends: VecDeque<Pending>,
    /// The receiver's posted `RECV` awaiting a message (at most one:
    /// the transfer unit is single-occupancy).
    pub(crate) parked_recv: Option<Pending>,
}

impl Channel {
    /// `true` if anything is queued, parked, or on the wire.
    fn is_active(&self) -> bool {
        !self.waiting_sends.is_empty()
            || !self.arrived.is_empty()
            || self.parked_recv.is_some()
            || self.in_flight > 0
    }
}

/// All rendezvous channels of the chip.
#[derive(Debug, Default)]
pub(crate) struct TransferFabric {
    channels: HashMap<ChannelKey, Channel>,
}

impl TransferFabric {
    /// The channel for `key`, created empty on first touch.
    pub(crate) fn channel(&mut self, key: ChannelKey) -> &mut Channel {
        self.channels.entry(key).or_default()
    }

    /// Sorted one-line summaries of channels still holding traffic, for
    /// deadlock diagnostics.
    pub(crate) fn congestion_report(&self) -> Vec<String> {
        let mut chans: Vec<String> = self
            .channels
            .iter()
            .filter(|(_, ch)| ch.is_active())
            .map(|((s, d, t), ch)| {
                format!(
                    "ch({s}->{d},tag{t}): inflight={} arrived={} waitsend={} parkedrecv={}",
                    ch.in_flight,
                    ch.arrived.len(),
                    ch.waiting_sends.len(),
                    ch.parked_recv.is_some()
                )
            })
            .collect();
        chans.sort();
        chans
    }
}

impl Machine<'_> {
    /// Starts an issued transfer-class instruction.
    pub(crate) fn start_transfer(
        &mut self,
        c: usize,
        seq: u64,
        res: Resolved,
        now: SimTime,
        ctx: &mut Ctx,
    ) {
        match res {
            Resolved::Send { peer, len, tag, .. } => {
                let credits = self.cfg.noc.channel_credits;
                let key = (c as u16, peer, tag);
                let chan = self.fabric.channel(key);
                if chan.in_flight + chan.arrived.len() as u32 >= credits {
                    chan.waiting_sends.push_back(Pending {
                        core: c as u16,
                        seq,
                    });
                } else {
                    chan.in_flight += 1;
                    self.launch_send(
                        key,
                        Pending {
                            core: c as u16,
                            seq,
                        },
                        len,
                        now,
                        ctx,
                    );
                }
            }
            Resolved::Recv {
                peer,
                block_len,
                blocks,
                tag,
                ..
            } => {
                let key = (peer, c as u16, tag);
                let recv_len = block_len * blocks;
                let chan = self.fabric.channel(key);
                if let Some(msg) = chan.arrived.pop_front() {
                    if msg.len != recv_len {
                        let detail = format!(
                            "send core{peer} len {} vs recv core{c} len {recv_len} (tag {tag})",
                            msg.len
                        );
                        self.fail(SimError::TagMismatch { detail }, ctx);
                        return;
                    }
                    self.finish_recv(c, seq, msg, ctx);
                    // A credit freed: launch one waiting send, if any.
                    self.kick_channel(key, now, ctx);
                } else {
                    debug_assert!(
                        chan.parked_recv.is_none(),
                        "transfer unit is single-occupancy"
                    );
                    chan.parked_recv = Some(Pending {
                        core: c as u16,
                        seq,
                    });
                }
            }
            Resolved::GLoad { len, .. } | Resolved::GStore { len, .. } => {
                let m = CostModel::new(self.cfg);
                let hops = m.config().resources.mesh_hops(c as u16, 0) + 1;
                let flits = m.flits_for_elems(len);
                let e_txn = m.noc_energy(flits, hops) + m.global_mem_cost(len).energy;
                let end = self.noc.memory_access(c as u16, len, now, &m);
                self.telemetry.energy.transfer += e_txn;
                let tag = self.cores[c].find(seq).map(|e| e.tag).unwrap_or(0);
                self.telemetry.node(tag).energy += e_txn;
                ctx.schedule_at(end, MachineEvent::Complete { core: c, seq });
            }
            other => unreachable!("transfer class mismatch: {other:?}"),
        }
    }

    /// Puts a send on the wire; it deposits into the receiver's queue at
    /// the tail-flit arrival time.
    fn launch_send(
        &mut self,
        key: ChannelKey,
        send: Pending,
        len: u32,
        now: SimTime,
        ctx: &mut Ctx,
    ) {
        let m = CostModel::new(self.cfg);
        let e_txn = m.message_energy(key.0, key.1, len);
        let end = self.noc.message(key.0, key.1, len, now, &m);
        self.telemetry.energy.transfer += e_txn;
        let tag = self.cores[send.core as usize]
            .find(send.seq)
            .map(|e| e.tag)
            .unwrap_or(0);
        self.telemetry.node(tag).energy += e_txn;
        ctx.schedule_at(end, MachineEvent::Deposit { key, send, len });
    }

    /// Tail flit arrived at the receiver: the send completes
    /// ("synchronized"), and either a parked `RECV` consumes the message
    /// immediately or it waits in the credit queue.
    pub(crate) fn deposit(&mut self, key: ChannelKey, send: Pending, len: u32, ctx: &mut Ctx) {
        if self.error.is_some() {
            return;
        }
        // Capture the payload while the sender's buffer is still hazard-protected.
        let data = if self.functional {
            let src = match self.cores[send.core as usize].find(send.seq) {
                Some(e) => match e.res {
                    Resolved::Send { src, .. } => src,
                    _ => unreachable!("send side mismatch"),
                },
                None => return,
            };
            self.cores[send.core as usize].mem.read(src, len)
        } else {
            Vec::new()
        };
        // Complete the send side.
        self.finish_transfer_side(send.core as usize, send.seq, ctx);
        let chan = self.fabric.channel(key);
        chan.in_flight -= 1;
        if let Some(recv) = chan.parked_recv.take() {
            let rc = recv.core as usize;
            let recv_len = self.cores[rc]
                .find(recv.seq)
                .map(|e| e.res.transfer_elems())
                .unwrap_or(0);
            if recv_len != len {
                let detail = format!(
                    "send core{} len {len} vs recv core{} len {recv_len} (tag {})",
                    key.0, key.1, key.2
                );
                self.fail(SimError::TagMismatch { detail }, ctx);
                return;
            }
            self.finish_recv(rc, recv.seq, ArrivedMsg { len, data }, ctx);
            self.kick_channel(key, ctx.now(), ctx);
        } else {
            self.fabric
                .channel(key)
                .arrived
                .push_back(ArrivedMsg { len, data });
        }
    }

    /// A credit became free: launch the oldest waiting send, if any.
    fn kick_channel(&mut self, key: ChannelKey, now: SimTime, ctx: &mut Ctx) {
        let credits = self.cfg.noc.channel_credits;
        let launch = {
            let chan = self.fabric.channel(key);
            if chan.in_flight + chan.arrived.len() as u32 >= credits {
                None
            } else {
                chan.waiting_sends.pop_front()
            }
        };
        if let Some(send) = launch {
            let len = self.cores[send.core as usize]
                .find(send.seq)
                .map(|e| e.res.transfer_elems())
                .unwrap_or(0);
            self.fabric.channel(key).in_flight += 1;
            self.launch_send(key, send, len, now, ctx);
        }
    }

    /// Completes a `RECV`: writes the payload and retires the entry.
    fn finish_recv(&mut self, c: usize, seq: u64, msg: ArrivedMsg, ctx: &mut Ctx) {
        if self.functional {
            if let Some(e) = self.cores[c].find(seq) {
                if let Resolved::Recv {
                    dst,
                    block_len,
                    dst_stride,
                    ..
                } = e.res
                {
                    let (dst, block_len, dst_stride) = (dst, block_len, dst_stride);
                    let mem = &mut self.cores[c].mem;
                    if block_len > 0 {
                        for (b, chunk) in msg.data.chunks(block_len as usize).enumerate() {
                            let d = (dst as i64 + b as i64 * dst_stride as i64).max(0) as u32;
                            mem.write(d, chunk);
                        }
                    }
                }
            }
        }
        self.finish_transfer_side(c, seq, ctx);
    }

    /// Marks one transfer entry done, releases the unit, updates stats,
    /// retires, and lets the core continue.
    fn finish_transfer_side(&mut self, c: usize, seq: u64, ctx: &mut Ctx) {
        let now = ctx.now();
        self.finish_time = self.finish_time.max(now);
        let (tag, span, text) = {
            let Some(e) = self.cores[c].find(seq) else {
                return;
            };
            e.state = super::rob::State::Done;
            (e.tag, now.saturating_sub(e.issue_at), e.text.take())
        };
        if let Some(t) = text {
            self.telemetry.record_trace(now, c as u16, t);
        }
        self.cores[c].stats.transfer_busy += span;
        self.telemetry.node(tag).comm_time += span;
        self.cores[c].retire();
        self.try_issue(c, ctx);
        self.try_advance(c, ctx);
    }
}

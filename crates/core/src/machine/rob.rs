//! Per-core re-order buffer: in-flight entries, the hazard/availability
//! scan that picks the next issuable instruction, and in-order retirement.

use std::collections::VecDeque;

use pimsim_event::SimTime;
use pimsim_isa::{GroupConfig, InstrClass, Instruction};

use crate::exec::Memory;
use crate::resolve::{Range, Resolved};
use crate::stats::CoreStats;

/// Lifecycle of one ROB entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum State {
    Waiting,
    Executing,
    Done,
}

/// One instruction in flight between dispatch and retirement.
#[derive(Debug)]
pub(crate) struct InFlight {
    pub(crate) seq: u64,
    pub(crate) res: Resolved,
    pub(crate) class: InstrClass,
    pub(crate) tag: u16,
    pub(crate) state: State,
    pub(crate) issue_at: SimTime,
    /// Rendered assembly, kept only while the trace wants entries.
    pub(crate) text: Option<String>,
    pub(crate) reads: Vec<Range>,
    pub(crate) writes: Vec<Range>,
    /// Global-memory interval `[start, end)` touched, with `true` = write.
    pub(crate) gmem: Option<(u64, u64, bool)>,
    /// Crossbars this MVM occupies (empty otherwise).
    pub(crate) xbars: Vec<u32>,
}

/// Do two optional global accesses conflict (overlap with a write)?
fn gmem_conflict(a: &Option<(u64, u64, bool)>, b: &Option<(u64, u64, bool)>) -> bool {
    match (a, b) {
        (Some((s1, e1, w1)), Some((s2, e2, w2))) => (*w1 || *w2) && s1 < e2 && s2 < e1,
        _ => false,
    }
}

/// One simulated core: frontend state, register file, ROB, execution-unit
/// occupancy, program and local memory.
#[derive(Debug)]
pub(crate) struct Core {
    pub(crate) pc: u32,
    pub(crate) regs: [i32; 32],
    pub(crate) halted: bool,
    pub(crate) rob: VecDeque<InFlight>,
    pub(crate) rob_size: usize,
    pub(crate) next_dispatch: SimTime,
    pub(crate) advance_pending: bool,
    pub(crate) vector_busy: bool,
    pub(crate) busy_xbars: Vec<u32>,
    pub(crate) seq_next: u64,
    pub(crate) instrs: Vec<Instruction>,
    pub(crate) groups: Vec<GroupConfig>,
    pub(crate) tags: Vec<u16>,
    pub(crate) mem: Memory,
    pub(crate) stats: CoreStats,
}

impl Core {
    /// The ROB entry with sequence number `seq`, if still in flight.
    pub(crate) fn find(&mut self, seq: u64) -> Option<&mut InFlight> {
        self.rob.iter_mut().find(|e| e.seq == seq)
    }

    /// Builds the in-flight entry for a memory-class instruction with
    /// sequence number `seq` — hazard ranges, global-memory interval,
    /// crossbar occupancy — in the `Waiting` state. Shared between live
    /// dispatch ([`Core::admit`]) and the compiled engine's boundary
    /// materialization, so both derive identical hazard metadata.
    pub(crate) fn entry_for(
        &self,
        tag: u16,
        class: InstrClass,
        res: Resolved,
        text: Option<String>,
        seq: u64,
    ) -> InFlight {
        let (mvm_out, xbars) = match &res {
            Resolved::Mvm { group, .. } => {
                let g = &self.groups[group.as_usize()];
                (g.output_len, g.xbar_ids.clone())
            }
            _ => (0, Vec::new()),
        };
        let gmem = match &res {
            Resolved::GLoad { gaddr, len, .. } => Some((*gaddr, gaddr + *len as u64, false)),
            Resolved::GStore { gaddr, len, .. } => Some((*gaddr, gaddr + *len as u64, true)),
            _ => None,
        };
        InFlight {
            seq,
            reads: res.reads(),
            writes: res.writes(mvm_out),
            gmem,
            res,
            class,
            tag,
            state: State::Waiting,
            issue_at: SimTime::ZERO,
            text,
            xbars,
        }
    }

    /// Builds the in-flight entry for a freshly dispatched memory-class
    /// instruction and appends it to the ROB.
    pub(crate) fn admit(
        &mut self,
        tag: u16,
        class: InstrClass,
        res: Resolved,
        text: Option<String>,
    ) {
        let seq = self.seq_next;
        self.seq_next += 1;
        let entry = self.entry_for(tag, class, res, text, seq);
        self.rob.push_back(entry);
    }

    /// The flow-control channel of a transfer, if any: `(src, dst, tag)`.
    pub(crate) fn channel_key(c: u16, res: &Resolved) -> Option<(u16, u16, u16)> {
        match res {
            Resolved::Send { peer, tag, .. } => Some((c, *peer, *tag)),
            Resolved::Recv { peer, tag, .. } => Some((*peer, c, *tag)),
            _ => None,
        }
    }

    /// Scans the ROB in age order for the oldest `Waiting` entry that has
    /// no hazard against older in-flight instructions and whose execution
    /// unit is available. `core_id` is this core's mesh id (for channel
    /// FIFO checks); `structure_hazard` gates the paper's same-crossbar
    /// serialization rule.
    pub(crate) fn next_issuable(&self, core_id: u16, structure_hazard: bool) -> Option<u64> {
        'scan: for (i, e) in self.rob.iter().enumerate() {
            if e.state != State::Waiting {
                continue;
            }
            // Hazards against older in-flight instructions.
            for older in self.rob.iter().take(i) {
                if older.state == State::Done {
                    continue;
                }
                let raw = e
                    .reads
                    .iter()
                    .any(|r| older.writes.iter().any(|w| r.overlaps(w)));
                let waw = e
                    .writes
                    .iter()
                    .any(|r| older.writes.iter().any(|w| r.overlaps(w)));
                let war = e
                    .writes
                    .iter()
                    .any(|r| older.reads.iter().any(|w| r.overlaps(w)));
                if raw || waw || war || gmem_conflict(&e.gmem, &older.gmem) {
                    continue 'scan;
                }
                // Transfers may overtake each other *across* channels, but
                // each (src, dst, tag) channel stays FIFO so messages
                // match in program order.
                if e.class == InstrClass::Transfer && older.class == InstrClass::Transfer {
                    let ek = Self::channel_key(core_id, &e.res);
                    let ok = Self::channel_key(core_id, &older.res);
                    if ek.is_some() && ek == ok {
                        continue 'scan;
                    }
                }
            }
            // Structural availability.
            let ok = match e.class {
                InstrClass::Vector => !self.vector_busy,
                // The transfer unit pipelines: waits cost time but do not
                // block unrelated channels.
                InstrClass::Transfer => true,
                InstrClass::Matrix => {
                    // The paper's structure hazard: same crossbar ⇒ wait
                    // (an ablation flag can disable the rule).
                    !structure_hazard || e.xbars.iter().all(|x| !self.busy_xbars.contains(x))
                }
                InstrClass::Scalar => unreachable!("scalar instructions never enter the ROB"),
            };
            if ok {
                return Some(e.seq);
            }
        }
        None
    }

    /// Pops retired (`Done`) entries from the ROB head, in order.
    pub(crate) fn retire(&mut self) {
        while matches!(self.rob.front(), Some(e) if e.state == State::Done) {
            self.rob.pop_front();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gmem_conflicts_require_a_write_and_overlap() {
        let read = Some((0u64, 10u64, false));
        let write = Some((5u64, 15u64, true));
        let far_write = Some((20u64, 30u64, true));
        assert!(gmem_conflict(&read, &write));
        assert!(gmem_conflict(&write, &write));
        assert!(!gmem_conflict(&read, &read), "two reads never conflict");
        assert!(
            !gmem_conflict(&read, &far_write),
            "disjoint never conflicts"
        );
        assert!(!gmem_conflict(&None, &write));
    }

    fn entry(seq: u64, class: InstrClass, res: Resolved) -> InFlight {
        InFlight {
            seq,
            reads: res.reads(),
            writes: res.writes(0),
            gmem: None,
            res,
            class,
            tag: 0,
            state: State::Waiting,
            issue_at: SimTime::ZERO,
            text: None,
            xbars: Vec::new(),
        }
    }

    fn test_core() -> Core {
        Core {
            pc: 0,
            regs: [0; 32],
            halted: false,
            rob: VecDeque::new(),
            rob_size: 8,
            next_dispatch: SimTime::ZERO,
            advance_pending: false,
            vector_busy: false,
            busy_xbars: Vec::new(),
            seq_next: 0,
            instrs: Vec::new(),
            groups: Vec::new(),
            tags: Vec::new(),
            mem: Memory::default(),
            stats: CoreStats::default(),
        }
    }

    #[test]
    fn raw_hazard_blocks_younger_entry() {
        let mut core = test_core();
        core.rob.push_back(entry(
            0,
            InstrClass::Vector,
            Resolved::VFill {
                dst: 0,
                value: 1,
                len: 8,
            },
        ));
        core.rob.push_back(entry(
            1,
            InstrClass::Vector,
            Resolved::VUn {
                op: pimsim_isa::VUnOp::Relu,
                dst: 100,
                src: 4,
                len: 8,
            },
        ));
        // Entry 0 issuable first; entry 1 reads what 0 writes.
        assert_eq!(core.next_issuable(0, true), Some(0));
        core.rob[0].state = State::Executing;
        core.vector_busy = true;
        assert_eq!(core.next_issuable(0, true), None);
        // Once 0 is done, 1 becomes issuable.
        core.rob[0].state = State::Done;
        core.vector_busy = false;
        assert_eq!(core.next_issuable(0, true), Some(1));
    }

    #[test]
    fn same_channel_transfers_stay_fifo() {
        let mut core = test_core();
        let send = |seq| {
            entry(
                seq,
                InstrClass::Transfer,
                Resolved::Send {
                    peer: 1,
                    src: 0,
                    len: 4,
                    tag: 7,
                },
            )
        };
        let mut older = send(0);
        older.state = State::Executing;
        core.rob.push_back(older);
        core.rob.push_back(send(1));
        // Same (src, dst, tag) channel: the younger send must wait...
        assert_eq!(core.next_issuable(0, true), None);
        // ...but a different tag may overtake.
        core.rob.push_back(entry(
            2,
            InstrClass::Transfer,
            Resolved::Send {
                peer: 1,
                src: 100,
                len: 4,
                tag: 8,
            },
        ));
        assert_eq!(core.next_issuable(0, true), Some(2));
    }

    #[test]
    fn structure_hazard_flag_gates_crossbar_conflicts() {
        let mut core = test_core();
        core.busy_xbars = vec![3];
        let mut e = entry(
            0,
            InstrClass::Matrix,
            Resolved::Mvm {
                group: pimsim_isa::GroupId(0),
                dst: 0,
                src: 100,
                len: 4,
            },
        );
        e.xbars = vec![3];
        core.rob.push_back(e);
        assert_eq!(core.next_issuable(0, true), None, "hazard enforced");
        assert_eq!(core.next_issuable(0, false), Some(0), "ablation disables");
    }

    #[test]
    fn retire_pops_done_prefix_only() {
        let mut core = test_core();
        for seq in 0..3 {
            core.rob.push_back(entry(
                seq,
                InstrClass::Vector,
                Resolved::VFill {
                    dst: seq as u32 * 100,
                    value: 0,
                    len: 1,
                },
            ));
        }
        core.rob[0].state = State::Done;
        core.rob[2].state = State::Done;
        core.retire();
        // Entry 1 still in flight: 2 must stay queued behind it.
        assert_eq!(core.rob.len(), 2);
        assert_eq!(core.rob[0].seq, 1);
        assert!(core.find(0).is_none());
        assert!(core.find(2).is_some());
    }
}

//! The matrix and vector execution units: issue selection, unit
//! occupancy, timed completion, and functional payload execution.
//!
//! Issue repeatedly asks the ROB for the oldest hazard-free entry whose
//! unit is free ([`super::rob::Core::next_issuable`]), marks it
//! `Executing`, and books the unit: the vector unit is single-occupancy,
//! the matrix unit accepts any number of concurrent `MVM`s with disjoint
//! crossbar sets, and transfers are handed to [`super::transfer`]. Costs
//! come from the [`TimingModel`](super::TimingModel) seam — never
//! computed here — so alternative unit timings slot in without touching
//! this choreography.

use pimsim_event::SimTime;
use pimsim_isa::{InstrClass, VectorShape};

use super::rob::State;
use super::{Ctx, EnergyField, Machine, MachineEvent, NodeTimeField};
use crate::exec::execute_local;
use crate::machine::error::SimError;
use crate::resolve::Resolved;

/// The [`VectorShape`] of a resolved vector operation, for cost lookup.
/// Built from the same shared constructors the static bound analyzer
/// prices with, so the two cannot drift.
fn vector_shape(res: &Resolved) -> VectorShape {
    match res {
        Resolved::VBin { len, .. } => VectorShape::binary(*len),
        Resolved::VImm { len, .. } | Resolved::VUn { len, .. } => VectorShape::unary(*len),
        Resolved::VFill { len, .. } => VectorShape::fill(*len),
        Resolved::VCopy2d {
            block_len, blocks, ..
        } => VectorShape::copy2d(*block_len, *blocks),
        Resolved::VPool {
            channels,
            win_w,
            win_h,
            ..
        } => VectorShape::pool(*channels, *win_w, *win_h),
        other => unreachable!("vector class mismatch: {other:?}"),
    }
}

impl Machine<'_> {
    /// Issues every ROB entry that can start right now.
    pub(crate) fn try_issue(&mut self, c: usize, ctx: &mut Ctx) {
        if self.error.is_some() {
            return;
        }
        let now = ctx.now();
        loop {
            let candidate = self.cores[c].next_issuable(c as u16, self.cfg.sim.structure_hazard);
            let Some(seq) = candidate else { return };
            self.start(c, seq, now, ctx);
        }
    }

    /// Moves entry `seq` to `Executing` and books its execution unit.
    fn start(&mut self, c: usize, seq: u64, now: SimTime, ctx: &mut Ctx) {
        let (class, res, tag) = {
            let e = self.cores[c].find(seq).expect("entry exists");
            e.state = State::Executing;
            e.issue_at = now;
            (e.class, e.res.clone(), e.tag)
        };
        match class {
            InstrClass::Vector => {
                let shape = vector_shape(&res);
                let cost = self
                    .timing
                    .vector_cost(self.cfg, shape.len, shape.reads, shape.writes);
                self.cores[c].vector_busy = true;
                self.telemetry.add_energy(EnergyField::Vector, cost.energy);
                self.telemetry.add_node_energy(tag, cost.energy);
                let end = now + cost.time;
                ctx.schedule_at(end, MachineEvent::Complete { core: c, seq });
            }
            InstrClass::Matrix => {
                let Resolved::Mvm { group, .. } = &res else {
                    unreachable!("matrix class mismatch")
                };
                let (inp, outp, nx) = {
                    let g = &self.cores[c].groups[group.as_usize()];
                    (g.input_len, g.output_len, g.xbar_ids.len() as u32)
                };
                let cost = self.timing.matrix_cost(self.cfg, inp, outp, nx);
                let xbars = self.cores[c]
                    .find(seq)
                    .map(|e| e.xbars.clone())
                    .unwrap_or_default();
                self.cores[c].busy_xbars.extend(xbars);
                self.telemetry.add_energy(EnergyField::Matrix, cost.energy);
                self.telemetry.add_node_energy(tag, cost.energy);
                let end = now + cost.time;
                ctx.schedule_at(end, MachineEvent::Complete { core: c, seq });
            }
            InstrClass::Transfer => {
                self.start_transfer(c, seq, tag, res, now, ctx);
            }
            InstrClass::Scalar => unreachable!(),
        }
    }

    /// A unit occupancy ended: release the unit, account busy time, run
    /// the functional payload, retire, and let the core continue.
    pub(crate) fn complete(&mut self, c: usize, seq: u64, ctx: &mut Ctx) {
        if self.error.is_some() {
            return;
        }
        let now = ctx.now();
        self.finish_time = self.finish_time.max(now);
        let (class, res, tag, span, text) = {
            let Some(e) = self.cores[c].find(seq) else {
                // A completion whose ROB entry vanished is an invariant
                // break (entries leave the ROB only through in-order
                // retirement after completing); silently dropping it used
                // to leave the unit booked forever.
                let detail = format!("unit completion on core{c} found no ROB entry for seq {seq}");
                self.fail(SimError::Internal { detail }, ctx);
                return;
            };
            e.state = State::Done;
            (
                e.class,
                e.res.clone(),
                e.tag,
                now.saturating_sub(e.issue_at),
                e.text.take(),
            )
        };
        if let Some(t) = text {
            self.telemetry.record_trace(now, c as u16, t);
        }
        match class {
            InstrClass::Vector => {
                self.cores[c].vector_busy = false;
                self.cores[c].stats.vector_busy += span;
                self.telemetry
                    .add_node_time(tag, NodeTimeField::Vector, span);
                self.functional_payload(c, &res);
            }
            InstrClass::Matrix => {
                let xbars = self.cores[c]
                    .find(seq)
                    .map(|e| e.xbars.clone())
                    .unwrap_or_default();
                self.cores[c].busy_xbars.retain(|x| !xbars.contains(x));
                self.cores[c].stats.matrix_busy += span;
                self.telemetry
                    .add_node_time(tag, NodeTimeField::Matrix, span);
                self.functional_payload(c, &res);
            }
            InstrClass::Transfer => {
                // Only global-memory transfers complete through here.
                self.cores[c].stats.transfer_busy += span;
                self.telemetry.node(tag).comm_time += span;
                if self.functional {
                    match &res {
                        Resolved::GLoad { dst, gaddr, len } => {
                            let data: Vec<i32> =
                                (0..*len as u64).map(|i| self.gmem.get(gaddr + i)).collect();
                            self.cores[c].mem.write(*dst, &data);
                        }
                        Resolved::GStore { gaddr, src, len } => {
                            let data = self.cores[c].mem.read(*src, *len);
                            for (i, v) in data.into_iter().enumerate() {
                                self.gmem.set(gaddr + i as u64, v);
                            }
                        }
                        _ => {}
                    }
                }
            }
            InstrClass::Scalar => unreachable!(),
        }
        self.cores[c].retire();
        self.try_issue(c, ctx);
        if self.hybrid && self.entry_ready(c, now) {
            // Dispatch is the last thing this handler does, so handing it
            // to the hybrid driver is exact: the driver either splices a
            // compiled region in here or runs the same `try_advance`.
            self.deferred_advance = Some(c);
        } else {
            self.try_advance(c, ctx);
        }
    }

    /// Hands a completed vector/matrix payload onward: executed on the
    /// core's local memory in functional runs, logged for later replay
    /// while the compiled engine records a region (scratch machines are
    /// never functional), dropped otherwise.
    fn functional_payload(&mut self, c: usize, res: &Resolved) {
        if self.functional {
            self.execute_functional(c, res);
        } else {
            self.telemetry.log_payload(res);
        }
    }

    /// Runs a vector/matrix payload on the core's local memory with the
    /// golden-model integer semantics.
    pub(crate) fn execute_functional(&mut self, c: usize, res: &Resolved) {
        let core = &mut self.cores[c];
        // Split borrow: groups are not touched by local data movement.
        let groups = std::mem::take(&mut core.groups);
        execute_local(res, &mut core.mem, &groups);
        core.groups = groups;
    }
}

//! The seam between instruction dispatch and cost lookup.
//!
//! The pipeline (frontend, ROB, units) decides *what* happens and *when
//! to ask*; a [`TimingModel`] decides *how long it takes* and *what it
//! burns*. Swapping the model changes every latency and energy number
//! without touching a line of the run loop — the hook alternative
//! memory/peripheral timings (LP5X-PIM-style studies) plug into.
//!
//! Transfers are the exception: their timing is inherently positional
//! (XY route, per-link occupancy, controller queue) and stays with
//! [`crate::noc::Noc`] and the shared [`CostModel`].

use std::fmt;

use pimsim_arch::model::{Cost, CostModel};
use pimsim_arch::{ArchConfig, Energy};
use pimsim_event::SimTime;

/// Unit-cost lookup for the machine pipeline.
///
/// Implementations must be `Send + Sync`: the sweep engine runs one
/// simulator per worker thread against a shared model. All methods take
/// the [`ArchConfig`] explicitly so a model can stay a zero-sized
/// strategy object.
pub trait TimingModel: fmt::Debug + Send + Sync {
    /// Minimum spacing between successive dispatches on one core.
    fn dispatch_interval(&self, cfg: &ArchConfig) -> SimTime;

    /// Time before the first dispatch (fetch + decode pipeline fill).
    fn decode_offset(&self, cfg: &ArchConfig) -> SimTime;

    /// Fetch/decode energy charged per dispatched instruction.
    fn frontend_energy(&self, cfg: &ArchConfig) -> Energy;

    /// Cost of one scalar ALU/branch operation (executed at dispatch).
    fn scalar_cost(&self, cfg: &ArchConfig) -> Cost;

    /// Cost of a vector operation over `len` elements with `reads` source
    /// and `writes` destination streams.
    fn vector_cost(&self, cfg: &ArchConfig, len: u32, reads: u32, writes: u32) -> Cost;

    /// Cost of one `MVM` on a group with `input_len` inputs and
    /// `output_len` outputs spread over `xbar_count` crossbars.
    fn matrix_cost(
        &self,
        cfg: &ArchConfig,
        input_len: u32,
        output_len: u32,
        xbar_count: u32,
    ) -> Cost;
}

/// The paper's timing: every cost comes from the shared
/// [`CostModel`] tables, so the cycle-accurate simulator and the
/// behaviour-level baseline disagree only in scheduling.
#[derive(Debug, Clone, Copy, Default)]
pub struct DefaultTiming;

impl TimingModel for DefaultTiming {
    fn dispatch_interval(&self, cfg: &ArchConfig) -> SimTime {
        let clock = CostModel::new(cfg).core_clock();
        // Round *up* when the width does not divide the period: truncation
        // (1000 ps at width 3 -> 333 ps) would admit slightly more than
        // `dispatch_width` dispatches per cycle, drifting ahead of the
        // hardware without bound. Ceiling errs on the conservative side.
        SimTime::from_ps(
            clock
                .period()
                .as_ps()
                .div_ceil(cfg.timing.dispatch_width.max(1) as u64),
        )
    }

    fn decode_offset(&self, cfg: &ArchConfig) -> SimTime {
        CostModel::new(cfg)
            .core_clock()
            .cycles_to_time(cfg.timing.decode_cycles as u64)
    }

    fn frontend_energy(&self, cfg: &ArchConfig) -> Energy {
        CostModel::new(cfg).frontend_energy()
    }

    fn scalar_cost(&self, cfg: &ArchConfig) -> Cost {
        CostModel::new(cfg).scalar_cost()
    }

    fn vector_cost(&self, cfg: &ArchConfig, len: u32, reads: u32, writes: u32) -> Cost {
        CostModel::new(cfg).vector_cost(len, reads, writes)
    }

    fn matrix_cost(
        &self,
        cfg: &ArchConfig,
        input_len: u32,
        output_len: u32,
        xbar_count: u32,
    ) -> Cost {
        CostModel::new(cfg).mvm_cost(input_len, output_len, xbar_count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_timing_matches_cost_model() {
        let cfg = ArchConfig::paper_default();
        let m = CostModel::new(&cfg);
        let t = DefaultTiming;
        assert_eq!(t.scalar_cost(&cfg), m.scalar_cost());
        assert_eq!(t.vector_cost(&cfg, 64, 2, 1), m.vector_cost(64, 2, 1));
        assert_eq!(t.matrix_cost(&cfg, 128, 128, 4), m.mvm_cost(128, 128, 4));
        assert_eq!(t.frontend_energy(&cfg), m.frontend_energy());
        assert_eq!(
            t.decode_offset(&cfg),
            m.core_clock()
                .cycles_to_time(cfg.timing.decode_cycles as u64)
        );
    }

    #[test]
    fn dispatch_interval_divides_the_core_period() {
        let mut cfg = ArchConfig::paper_default();
        cfg.timing.dispatch_width = 2;
        let t = DefaultTiming;
        let period = CostModel::new(&cfg).core_clock().period();
        assert_eq!(
            t.dispatch_interval(&cfg),
            SimTime::from_ps(period.as_ps() / 2)
        );
    }

    #[test]
    fn dispatch_interval_never_exceeds_the_width() {
        // Regression: 1000 ps at width 3 used to truncate to 333 ps —
        // 3.003 dispatches per cycle, i.e. a 3-wide core dispatching
        // *faster* than 3 per cycle with unbounded drift. The interval
        // must round up so `width * interval >= period` always holds.
        let mut cfg = ArchConfig::paper_default();
        cfg.timing.dispatch_width = 3;
        let t = DefaultTiming;
        assert_eq!(t.dispatch_interval(&cfg), SimTime::from_ps(334));
        for width in 1u32..=9 {
            cfg.timing.dispatch_width = width;
            let interval = t.dispatch_interval(&cfg).as_ps();
            let period = CostModel::new(&cfg).core_clock().period().as_ps();
            assert!(
                interval * width as u64 >= period,
                "width {width}: {width} dispatches take {} ps < one {period} ps cycle",
                interval * width as u64
            );
            assert!(
                (interval - 1) * width as u64 <= period,
                "width {width}: interval {interval} ps is more than rounding"
            );
        }
    }

    /// A custom model can be slotted in without the run loop noticing —
    /// the seam the component split exists for.
    #[derive(Debug)]
    struct DoubledScalar;

    impl TimingModel for DoubledScalar {
        fn dispatch_interval(&self, cfg: &ArchConfig) -> SimTime {
            DefaultTiming.dispatch_interval(cfg)
        }
        fn decode_offset(&self, cfg: &ArchConfig) -> SimTime {
            DefaultTiming.decode_offset(cfg)
        }
        fn frontend_energy(&self, cfg: &ArchConfig) -> Energy {
            DefaultTiming.frontend_energy(cfg)
        }
        fn scalar_cost(&self, cfg: &ArchConfig) -> Cost {
            let c = DefaultTiming.scalar_cost(cfg);
            Cost {
                time: c.time + c.time,
                energy: c.energy,
            }
        }
        fn vector_cost(&self, cfg: &ArchConfig, len: u32, reads: u32, writes: u32) -> Cost {
            DefaultTiming.vector_cost(cfg, len, reads, writes)
        }
        fn matrix_cost(&self, cfg: &ArchConfig, i: u32, o: u32, x: u32) -> Cost {
            DefaultTiming.matrix_cost(cfg, i, o, x)
        }
    }

    #[test]
    fn alternative_models_are_object_safe() {
        let cfg = ArchConfig::paper_default();
        let models: [&dyn TimingModel; 2] = [&DefaultTiming, &DoubledScalar];
        let base = models[0].scalar_cost(&cfg).time;
        assert_eq!(models[1].scalar_cost(&cfg).time, base + base);
    }
}

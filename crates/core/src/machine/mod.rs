//! The simulation machine, decomposed into a component pipeline.
//!
//! The monolithic machine has been split along the hardware's own seams;
//! each stage owns one concern and one module:
//!
//! * [`frontend`] — fetch/decode/dispatch pacing and scalar execution,
//! * [`rob`] — per-core re-order buffer: in-flight entries, hazard scan,
//!   in-order retirement,
//! * [`units`] — matrix/vector execution units: issue, occupancy,
//!   completion,
//! * [`transfer`] — the rendezvous transfer fabric: flow-controlled
//!   channels, credit bookkeeping, global-memory traffic,
//! * [`timing`] — the [`TimingModel`] seam between dispatch and cost
//!   lookup (swap in alternative unit timings without touching the run
//!   loop),
//! * [`run`] — the [`Simulator`] entry point: world construction, the
//!   event loop, deadlock detection, report assembly,
//! * [`error`] — the [`SimError`] taxonomy.
//!
//! The [`Machine`] defined here is the [`World`] driven by the typed
//! event kernel: all cross-component choreography happens through the
//! three [`MachineEvent`]s, so the timing behaviour of a run is exactly
//! the event schedule those variants produce.

pub(crate) mod engine;
pub(crate) mod error;
pub(crate) mod frontend;
pub(crate) mod rob;
pub(crate) mod run;
pub(crate) mod timing;
pub(crate) mod transfer;
pub(crate) mod units;

use pimsim_arch::{ArchConfig, Energy};
use pimsim_event::{EventCtx, SimTime, World};

use crate::exec::Memory;
use crate::noc::{Noc, NocCosts};
use crate::resolve::Resolved;
use crate::stats::{EnergyBreakdown, NodeStats, TraceEntry, TRACE_CAP};

pub use engine::{Engine, EngineInput, EngineKind, EngineOutput, EventEngine};
pub use error::SimError;
pub use run::Simulator;
pub use timing::{DefaultTiming, TimingModel};

use rob::Core;
use transfer::{ChannelKey, Pending, TransferFabric};

/// Which run-wide energy accumulator a recorded delta targets. The
/// transfer accumulator is absent on purpose: transfers delimit compiled
/// regions, so the recording pass can never observe one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum EnergyField {
    Frontend,
    Scalar,
    Vector,
    Matrix,
}

/// Which per-node time accumulator a recorded delta targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum NodeTimeField {
    Matrix,
    Vector,
}

/// One telemetry mutation, recorded in execution order by the compiled
/// engine's placement pass and re-applied verbatim at replay. Energy is
/// `f64`-backed, so byte-identical replay requires the *original addends
/// in their original order* — never a before/after difference, which
/// rounds differently.
#[derive(Debug, Clone)]
pub(crate) enum Delta {
    /// `telemetry.energy.<field> += v`.
    Energy(EnergyField, Energy),
    /// `telemetry.node(tag).energy += v`.
    NodeEnergy(u16, Energy),
    /// `telemetry.node(tag).<field>_time += v`.
    NodeTime(u16, NodeTimeField, SimTime),
    /// One dispatched instruction attributed to `tag`.
    Dispatch(u16),
    /// `telemetry.class_counts[i] += 1`.
    Class(usize),
    /// A completed functional payload (applied to the replaying core's
    /// local memory only when the run is functional).
    Payload(Resolved),
}

/// Run-wide counters and the optional instruction trace, collected by
/// every pipeline stage and folded into the final `SimReport`.
#[derive(Debug)]
pub(crate) struct Telemetry {
    pub(crate) energy: EnergyBreakdown,
    /// Dynamic counts by class `[matrix, vector, transfer, scalar]`.
    pub(crate) class_counts: [u64; 4],
    pub(crate) instructions: u64,
    /// Per-node (tag) attribution; index = tag value.
    pub(crate) per_node: Vec<NodeStats>,
    pub(crate) trace_on: bool,
    pub(crate) trace: Vec<TraceEntry>,
    /// Ordered mutation log, present only while the compiled engine's
    /// placement pass records a region on a scratch machine.
    pub(crate) recorder: Option<Vec<Delta>>,
}

impl Telemetry {
    pub(crate) fn new(trace_on: bool) -> Telemetry {
        Telemetry {
            energy: EnergyBreakdown::default(),
            class_counts: [0; 4],
            instructions: 0,
            per_node: Vec::new(),
            trace_on,
            trace: Vec::new(),
            recorder: None,
        }
    }

    /// `telemetry.energy.<field> += v`, logged when recording.
    pub(crate) fn add_energy(&mut self, field: EnergyField, v: Energy) {
        match field {
            EnergyField::Frontend => self.energy.frontend += v,
            EnergyField::Scalar => self.energy.scalar += v,
            EnergyField::Vector => self.energy.vector += v,
            EnergyField::Matrix => self.energy.matrix += v,
        }
        if let Some(log) = &mut self.recorder {
            log.push(Delta::Energy(field, v));
        }
    }

    /// `node(tag).energy += v`, logged when recording.
    pub(crate) fn add_node_energy(&mut self, tag: u16, v: Energy) {
        self.node(tag).energy += v;
        if let Some(log) = &mut self.recorder {
            log.push(Delta::NodeEnergy(tag, v));
        }
    }

    /// `node(tag).<field>_time += v`, logged when recording.
    pub(crate) fn add_node_time(&mut self, tag: u16, field: NodeTimeField, v: SimTime) {
        match field {
            NodeTimeField::Matrix => self.node(tag).matrix_time += v,
            NodeTimeField::Vector => self.node(tag).vector_time += v,
        }
        if let Some(log) = &mut self.recorder {
            log.push(Delta::NodeTime(tag, field, v));
        }
    }

    /// Counts one dispatched instruction against `tag`, logged when
    /// recording.
    pub(crate) fn count_dispatch(&mut self, tag: u16) {
        self.instructions += 1;
        self.node(tag).instructions += 1;
        if let Some(log) = &mut self.recorder {
            log.push(Delta::Dispatch(tag));
        }
    }

    /// `class_counts[i] += 1`, logged when recording.
    pub(crate) fn count_class(&mut self, i: usize) {
        self.class_counts[i] += 1;
        if let Some(log) = &mut self.recorder {
            log.push(Delta::Class(i));
        }
    }

    /// Logs a completed functional payload while recording (the scratch
    /// machine never runs functionally; replay applies the payload to the
    /// live core when the real run does).
    pub(crate) fn log_payload(&mut self, res: &Resolved) {
        if let Some(log) = &mut self.recorder {
            log.push(Delta::Payload(res.clone()));
        }
    }

    /// Drains the mutations recorded since the last call.
    pub(crate) fn take_recorded(&mut self) -> Vec<Delta> {
        match &mut self.recorder {
            Some(log) => std::mem::take(log),
            None => Vec::new(),
        }
    }

    /// Re-applies one recorded mutation to this telemetry sink.
    pub(crate) fn apply(&mut self, d: &Delta) {
        match d {
            Delta::Energy(field, v) => self.add_energy(*field, *v),
            Delta::NodeEnergy(tag, v) => self.add_node_energy(*tag, *v),
            Delta::NodeTime(tag, field, v) => self.add_node_time(*tag, *field, *v),
            Delta::Dispatch(tag) => self.count_dispatch(*tag),
            Delta::Class(i) => self.count_class(*i),
            Delta::Payload(_) => unreachable!("payloads are applied by the replay core"),
        }
    }

    /// The stats bucket for node `tag`, growing the table as needed.
    pub(crate) fn node(&mut self, tag: u16) -> &mut NodeStats {
        let idx = tag as usize;
        if self.per_node.len() <= idx {
            self.per_node.resize(idx + 1, NodeStats::default());
        }
        &mut self.per_node[idx]
    }

    /// `true` while the trace wants more entries. Checked *before*
    /// rendering instruction text: once the cap is hit the trace can never
    /// grow again, so skipping the formatting is observationally free.
    pub(crate) fn trace_live(&self) -> bool {
        self.trace_on && self.trace.len() < TRACE_CAP
    }

    /// Appends a trace entry unless the cap has been reached.
    pub(crate) fn record_trace(&mut self, time: SimTime, core: u16, instr: String) {
        if self.trace.len() < TRACE_CAP {
            self.trace.push(TraceEntry { time, core, instr });
        }
    }
}

/// The events that drive the machine. Everything the pipeline does at a
/// later simulated time is one of these three wake-ups.
#[derive(Debug, Clone, Copy)]
pub(crate) enum MachineEvent {
    /// The frontend of `core` may try to dispatch again (pacing timer).
    Advance { core: usize },
    /// The execution-unit occupancy of ROB entry `seq` on `core` ends.
    Complete { core: usize, seq: u64 },
    /// A message's tail flit arrives at the receiving end of `key` (the
    /// payload length travels inside `send`).
    Deposit { key: ChannelKey, send: Pending },
    /// A pre-placed schedule slot for `core` fires (compiled engine
    /// only). The event engine treats one reaching it as an invariant
    /// break, never a no-op.
    Slot { core: usize },
}

/// Scheduling context alias used throughout the machine modules.
pub(crate) type Ctx = EventCtx<MachineEvent>;

/// The complete simulated chip: per-core frontends and ROBs, the
/// execution units, the NoC, the transfer fabric, and the telemetry
/// sink — the [`World`] the event kernel drives.
pub(crate) struct Machine<'a> {
    pub(crate) cfg: &'a ArchConfig,
    pub(crate) timing: &'a dyn TimingModel,
    pub(crate) cores: Vec<Core>,
    pub(crate) noc: Noc,
    /// Per-message cost constants, derived once from `cfg` so the
    /// transfer hot path never rebuilds a cost model.
    pub(crate) costs: NocCosts,
    pub(crate) gmem: Memory,
    pub(crate) fabric: TransferFabric,
    pub(crate) functional: bool,
    pub(crate) dispatch_interval: SimTime,
    pub(crate) telemetry: Telemetry,
    pub(crate) error: Option<SimError>,
    /// Timestamp of the last real activity (the kernel clock advances to
    /// the horizon when the queue drains; latency must not).
    pub(crate) finish_time: SimTime,
    /// True when a hybrid (compiled-engine) world drives this machine.
    /// Lets `complete` hand its trailing dispatch back to the driver so a
    /// compiled region can start right after a completion drains the ROB
    /// — the re-dispatch site that never surfaces as an `Advance` event.
    pub(crate) hybrid: bool,
    /// Core whose post-completion dispatch was deferred to the hybrid
    /// driver. Only set while `hybrid`; drained before the event returns.
    pub(crate) deferred_advance: Option<usize>,
}

impl Machine<'_> {
    /// Records the first error and stops the kernel.
    pub(crate) fn fail(&mut self, err: SimError, ctx: &mut Ctx) {
        if self.error.is_none() {
            self.error = Some(err);
        }
        ctx.stop();
    }

    /// True when `core` is in the state a compiled region can start from:
    /// quiescent ROB, dispatch not throttled, and no pacing `Advance`
    /// outstanding (which would fire mid-replay against stale state).
    pub(crate) fn entry_ready(&self, c: usize, now: SimTime) -> bool {
        let core = &self.cores[c];
        self.error.is_none()
            && !core.halted
            && !core.advance_pending
            && core.rob.is_empty()
            && core.next_dispatch <= now
    }
}

impl World for Machine<'_> {
    type Event = MachineEvent;

    fn handle(&mut self, ev: MachineEvent, ctx: &mut Ctx) {
        match ev {
            MachineEvent::Advance { core } => {
                self.cores[core].advance_pending = false;
                self.try_advance(core, ctx);
            }
            MachineEvent::Complete { core, seq } => self.complete(core, seq, ctx),
            MachineEvent::Deposit { key, send } => self.deposit(key, send, ctx),
            MachineEvent::Slot { core } => {
                // A schedule slot with no replay state behind it is a stale
                // schedule — silently ignoring it would desynchronize the
                // compiled timeline from the machine.
                let detail = format!("schedule slot for core{core} reached the event engine");
                self.fail(SimError::Internal { detail }, ctx);
            }
        }
    }
}

//! The simulation machine, decomposed into a component pipeline.
//!
//! The monolithic machine has been split along the hardware's own seams;
//! each stage owns one concern and one module:
//!
//! * [`frontend`] — fetch/decode/dispatch pacing and scalar execution,
//! * [`rob`] — per-core re-order buffer: in-flight entries, hazard scan,
//!   in-order retirement,
//! * [`units`] — matrix/vector execution units: issue, occupancy,
//!   completion,
//! * [`transfer`] — the rendezvous transfer fabric: flow-controlled
//!   channels, credit bookkeeping, global-memory traffic,
//! * [`timing`] — the [`TimingModel`] seam between dispatch and cost
//!   lookup (swap in alternative unit timings without touching the run
//!   loop),
//! * [`run`] — the [`Simulator`] entry point: world construction, the
//!   event loop, deadlock detection, report assembly,
//! * [`error`] — the [`SimError`] taxonomy.
//!
//! The [`Machine`] defined here is the [`World`] driven by the typed
//! event kernel: all cross-component choreography happens through the
//! three [`MachineEvent`]s, so the timing behaviour of a run is exactly
//! the event schedule those variants produce.

pub(crate) mod error;
pub(crate) mod frontend;
pub(crate) mod rob;
pub(crate) mod run;
pub(crate) mod timing;
pub(crate) mod transfer;
pub(crate) mod units;

use pimsim_arch::ArchConfig;
use pimsim_event::{EventCtx, SimTime, World};

use crate::exec::Memory;
use crate::noc::{Noc, NocCosts};
use crate::stats::{EnergyBreakdown, NodeStats, TraceEntry, TRACE_CAP};

pub use error::SimError;
pub use run::Simulator;
pub use timing::{DefaultTiming, TimingModel};

use rob::Core;
use transfer::{ChannelKey, Pending, TransferFabric};

/// Run-wide counters and the optional instruction trace, collected by
/// every pipeline stage and folded into the final `SimReport`.
#[derive(Debug)]
pub(crate) struct Telemetry {
    pub(crate) energy: EnergyBreakdown,
    /// Dynamic counts by class `[matrix, vector, transfer, scalar]`.
    pub(crate) class_counts: [u64; 4],
    pub(crate) instructions: u64,
    /// Per-node (tag) attribution; index = tag value.
    pub(crate) per_node: Vec<NodeStats>,
    pub(crate) trace_on: bool,
    pub(crate) trace: Vec<TraceEntry>,
}

impl Telemetry {
    pub(crate) fn new(trace_on: bool) -> Telemetry {
        Telemetry {
            energy: EnergyBreakdown::default(),
            class_counts: [0; 4],
            instructions: 0,
            per_node: Vec::new(),
            trace_on,
            trace: Vec::new(),
        }
    }

    /// The stats bucket for node `tag`, growing the table as needed.
    pub(crate) fn node(&mut self, tag: u16) -> &mut NodeStats {
        let idx = tag as usize;
        if self.per_node.len() <= idx {
            self.per_node.resize(idx + 1, NodeStats::default());
        }
        &mut self.per_node[idx]
    }

    /// `true` while the trace wants more entries. Checked *before*
    /// rendering instruction text: once the cap is hit the trace can never
    /// grow again, so skipping the formatting is observationally free.
    pub(crate) fn trace_live(&self) -> bool {
        self.trace_on && self.trace.len() < TRACE_CAP
    }

    /// Appends a trace entry unless the cap has been reached.
    pub(crate) fn record_trace(&mut self, time: SimTime, core: u16, instr: String) {
        if self.trace.len() < TRACE_CAP {
            self.trace.push(TraceEntry { time, core, instr });
        }
    }
}

/// The events that drive the machine. Everything the pipeline does at a
/// later simulated time is one of these three wake-ups.
#[derive(Debug, Clone, Copy)]
pub(crate) enum MachineEvent {
    /// The frontend of `core` may try to dispatch again (pacing timer).
    Advance { core: usize },
    /// The execution-unit occupancy of ROB entry `seq` on `core` ends.
    Complete { core: usize, seq: u64 },
    /// A message's tail flit arrives at the receiving end of `key` (the
    /// payload length travels inside `send`).
    Deposit { key: ChannelKey, send: Pending },
}

/// Scheduling context alias used throughout the machine modules.
pub(crate) type Ctx = EventCtx<MachineEvent>;

/// The complete simulated chip: per-core frontends and ROBs, the
/// execution units, the NoC, the transfer fabric, and the telemetry
/// sink — the [`World`] the event kernel drives.
pub(crate) struct Machine<'a> {
    pub(crate) cfg: &'a ArchConfig,
    pub(crate) timing: &'a dyn TimingModel,
    pub(crate) cores: Vec<Core>,
    pub(crate) noc: Noc,
    /// Per-message cost constants, derived once from `cfg` so the
    /// transfer hot path never rebuilds a cost model.
    pub(crate) costs: NocCosts,
    pub(crate) gmem: Memory,
    pub(crate) fabric: TransferFabric,
    pub(crate) functional: bool,
    pub(crate) dispatch_interval: SimTime,
    pub(crate) telemetry: Telemetry,
    pub(crate) error: Option<SimError>,
    /// Timestamp of the last real activity (the kernel clock advances to
    /// the horizon when the queue drains; latency must not).
    pub(crate) finish_time: SimTime,
}

impl Machine<'_> {
    /// Records the first error and stops the kernel.
    pub(crate) fn fail(&mut self, err: SimError, ctx: &mut Ctx) {
        if self.error.is_none() {
            self.error = Some(err);
        }
        ctx.stop();
    }
}

impl World for Machine<'_> {
    type Event = MachineEvent;

    fn handle(&mut self, ev: MachineEvent, ctx: &mut Ctx) {
        match ev {
            MachineEvent::Advance { core } => {
                self.cores[core].advance_pending = false;
                self.try_advance(core, ctx);
            }
            MachineEvent::Complete { core, seq } => self.complete(core, seq, ctx),
            MachineEvent::Deposit { key, send } => self.deposit(key, send, ctx),
        }
    }
}

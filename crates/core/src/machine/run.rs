//! The run loop: world construction, the event loop, deadlock detection,
//! and report assembly.

use std::collections::VecDeque;

use pimsim_arch::model::CostModel;
use pimsim_arch::ArchConfig;
use pimsim_event::{RunResult, SimTime};
use pimsim_isa::{Program, ProgramLimits};

use super::engine::{Engine, EngineInput, EventEngine};
use super::rob::Core;
use super::timing::{DefaultTiming, TimingModel};
use super::transfer::TransferFabric;
use super::{error::SimError, Machine, Telemetry};
use crate::exec::Memory;
use crate::noc::{Noc, NocCosts};
use crate::stats::{CoreStats, SimReport};

/// Runs compiled [`Program`]s on a configured chip.
///
/// See the crate docs for the machine model. Unit latencies and energies
/// come from a [`TimingModel`] — [`DefaultTiming`] (the paper's shared
/// cost tables) unless [`Simulator::with_timing`] swaps in another. The
/// run loop itself sits behind the [`Engine`] seam — [`EventEngine`]
/// (the live interpreter) unless [`Simulator::with_engine`] swaps in the
/// compiled scheduler.
#[derive(Debug, Clone, Copy)]
pub struct Simulator<'a> {
    arch: &'a ArchConfig,
    timing: &'a dyn TimingModel,
    engine: &'a dyn Engine,
    cache: Option<&'a crate::compiled::ScheduleCache>,
    /// Set by [`Simulator::with_timing`]: custom cost models have no
    /// comparable identity, so cross-run schedule caches are bypassed to
    /// keep a cache from replaying schedules recorded under other costs.
    custom_timing: bool,
    /// Set by [`Simulator::with_preflight`]: run the static analyzer
    /// before the first event and refuse programs with provable defects.
    preflight: bool,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator over `arch` with the default timing model and
    /// the event engine.
    pub fn new(arch: &'a ArchConfig) -> Self {
        Simulator {
            arch,
            timing: &DefaultTiming,
            engine: &EventEngine,
            cache: None,
            custom_timing: false,
            preflight: false,
        }
    }

    /// Enables the pre-flight static check: before the first event fires,
    /// the program is run through `pimsim-analyze` (control flow, register
    /// dataflow, memory bounds, send/recv rendezvous) and refused with
    /// [`SimError::StaticAnalysis`] if any *error*-severity diagnostic is
    /// found — surfacing a guaranteed `Deadlock`/`TagMismatch` in
    /// microseconds instead of after millions of simulated events.
    /// Warnings never block a run. Off by default: simulation output is
    /// byte-identical with and without the check.
    pub fn with_preflight(mut self) -> Self {
        self.preflight = true;
        self
    }

    /// Replaces the unit-timing model (the run loop is untouched; only
    /// cost lookups change). Disables any [`Simulator::with_schedule_cache`]:
    /// cached region schedules embed the cost model they were recorded
    /// under.
    pub fn with_timing(mut self, timing: &'a dyn TimingModel) -> Self {
        self.timing = timing;
        self.custom_timing = true;
        self
    }

    /// Replaces the run-loop engine (costs and machine semantics are
    /// untouched; only how the event stream is driven changes).
    pub fn with_engine(mut self, engine: &'a dyn Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Shares a compiled-region store across runs, so repeated simulation
    /// of the same program under the compiled engine pays each region's
    /// compile cost once instead of once per run. The cache binds to the
    /// first architecture it sees and is bypassed for any other; engines
    /// that pre-compute nothing ignore it.
    pub fn with_schedule_cache(mut self, cache: &'a crate::compiled::ScheduleCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Runs `program` to completion.
    ///
    /// # Errors
    ///
    /// * [`SimError::InvalidProgram`] / [`SimError::Arch`] for malformed inputs,
    /// * [`SimError::StaticAnalysis`] when [`Simulator::with_preflight`]
    ///   is on and the analyzer proves a defect,
    /// * [`SimError::Deadlock`] when transfers can never match,
    /// * [`SimError::Timeout`] at the `sim.max_cycles` horizon,
    /// * [`SimError::TagMismatch`] for inconsistent payload lengths.
    pub fn run(&self, program: &Program) -> Result<SimReport, SimError> {
        self.arch.validate()?;
        let limits = ProgramLimits {
            cores: self.arch.resources.cores(),
            xbars_per_core: self.arch.resources.xbars_per_core,
            local_mem_elems: self.arch.resources.local_mem_elems(),
            global_mem_elems: self.arch.resources.global_mem_elems(),
        };
        program.validate(&limits)?;

        if self.preflight {
            let analysis = pimsim_analyze::analyze(program, self.arch);
            if analysis.has_errors() {
                let errors: Vec<String> = analysis
                    .diagnostics
                    .iter()
                    .filter(|d| d.severity == pimsim_analyze::Severity::Error)
                    .map(|d| d.to_string())
                    .collect();
                return Err(SimError::StaticAnalysis {
                    detail: errors.join("\n"),
                });
            }
        }

        let functional = self.arch.sim.functional;
        let machine = self.build_machine(program, functional);

        let clock = CostModel::new(self.arch).core_clock();
        let horizon = clock.cycles_to_time(self.arch.sim.max_cycles);
        let out = self.engine.drive(EngineInput {
            machine,
            horizon,
            cache: if self.custom_timing { None } else { self.cache },
        });
        let (mut machine, result, events, schedule) =
            (out.machine, out.result, out.events, out.schedule);
        let now = machine.finish_time;

        if let Some(err) = machine.error.take() {
            return Err(err);
        }
        match result {
            RunResult::Horizon | RunResult::StepBudget => {
                return Err(SimError::Timeout {
                    max_cycles: self.arch.sim.max_cycles,
                })
            }
            RunResult::Stopped => unreachable!("stop implies a recorded error"),
            RunResult::Exhausted => {}
        }
        self.check_quiescent(&machine, now)?;

        let latency = now;
        machine.telemetry.energy.static_energy = CostModel::new(self.arch).static_energy(latency);
        let per_core = machine.cores.iter().map(|c| c.stats).collect();
        Ok(SimReport {
            latency,
            energy: machine.telemetry.energy,
            instructions: machine.telemetry.instructions,
            class_counts: machine.telemetry.class_counts,
            per_core,
            per_node: machine.telemetry.per_node,
            events,
            schedule,
            trace: machine.telemetry.trace,
            gmem: functional.then_some(machine.gmem),
            locals: functional.then(|| machine.cores.into_iter().map(|c| c.mem).collect()),
        })
    }

    /// Assembles the machine: one core per mesh slot with its program
    /// slice, the NoC, global memory, and an empty transfer fabric.
    pub(crate) fn build_machine(&self, program: &Program, functional: bool) -> Machine<'a> {
        let dispatch_interval = self.timing.dispatch_interval(self.arch);
        let decode_offset = self.timing.decode_offset(self.arch);

        let n_cores = self.arch.resources.cores() as usize;
        let mut cores = Vec::with_capacity(n_cores);
        for cid in 0..n_cores {
            let cp = program.cores.get(cid).cloned().unwrap_or_default();
            let mut mem = Memory::default();
            if functional {
                for (start, values) in &cp.local_init {
                    mem.write(*start, values);
                }
            }
            cores.push(Core {
                pc: 0,
                regs: [0; 32],
                halted: cp.instrs.is_empty(),
                rob: VecDeque::new(),
                rob_size: self.arch.resources.rob_size as usize,
                next_dispatch: decode_offset,
                advance_pending: false,
                vector_busy: false,
                busy_xbars: Vec::new(),
                seq_next: 0,
                instrs: cp.instrs,
                groups: cp.groups,
                tags: cp.instr_tags,
                mem,
                stats: CoreStats::default(),
            });
        }
        let mut gmem = Memory::default();
        if functional {
            for (start, values) in &program.global_init {
                for (i, v) in values.iter().enumerate() {
                    gmem.set(start + i as u64, *v);
                }
            }
        }

        Machine {
            cfg: self.arch,
            timing: self.timing,
            noc: Noc::for_arch(self.arch),
            costs: NocCosts::new(self.arch),
            gmem,
            cores,
            fabric: TransferFabric::new(self.arch.noc.virtual_channels),
            functional,
            dispatch_interval,
            telemetry: Telemetry::new(self.arch.sim.trace),
            error: None,
            finish_time: SimTime::ZERO,
            hybrid: false,
            deferred_advance: None,
        }
    }

    /// Everything drained: all cores must be halted with empty ROBs,
    /// otherwise some rendezvous never matched — report a deadlock with
    /// per-core and per-channel diagnostics.
    fn check_quiescent(&self, machine: &Machine<'_>, now: SimTime) -> Result<(), SimError> {
        let stuck: Vec<String> = machine
            .cores
            .iter()
            .enumerate()
            .filter(|(_, core)| !core.halted || !core.rob.is_empty())
            .map(|(i, core)| {
                let rob: Vec<String> = core
                    .rob
                    .iter()
                    .map(|e| format!("{:?}/{:?}/{:?}", e.class, e.state, e.res))
                    .collect();
                format!(
                    "core{i}: pc={} halted={} pending={} next_dispatch={} next_instr={:?} rob=[{}]",
                    core.pc,
                    core.halted,
                    core.advance_pending,
                    core.next_dispatch,
                    core.instrs.get(core.pc as usize).map(|x| x.to_string()),
                    rob.join(" | ")
                )
            })
            .collect();
        if stuck.is_empty() {
            // Cores all halted cleanly — but a send whose message was
            // deposited and never received would leave the run looking
            // successful while data silently rotted in the fabric.
            let leaked = machine.fabric.unmatched_sites();
            if leaked.is_empty() {
                return Ok(());
            }
            return Err(SimError::Deadlock {
                time: now,
                detail: format!(
                    "all cores halted, but sent message(s) were never received:\n{}\n\
                     hint: `pimsim check` reports unmatched transfers statically, \
                     with per-site core/pc",
                    leaked.join("\n")
                ),
            });
        }
        let chans = machine.fabric.congestion_report();
        let mut detail = format!("{}\n{}", stuck.join("; "), chans.join("\n"));
        let unmatched = machine.fabric.unmatched_sites();
        if !unmatched.is_empty() {
            detail.push_str("\nunmatched rendezvous site(s):\n");
            detail.push_str(&unmatched.join("\n"));
        }
        detail.push_str(
            "\nhint: `pimsim check` diagnoses unmatched transfers and \
             crossed send/recv orderings statically, with per-site core/pc",
        );
        Err(SimError::Deadlock { time: now, detail })
    }
}

//! The `Engine` seam: *how* a built machine is driven to completion.
//!
//! [`Simulator::run`](super::Simulator::run) validates inputs, builds the
//! [`Machine`](super::Machine), and assembles the report; everything in
//! between — seeding the kernel, executing the event stream — happens
//! behind this trait, the run-loop sibling of the
//! [`TimingModel`](super::TimingModel) cost seam:
//!
//! * [`EventEngine`] (the default and the reference model) hands the
//!   machine to the typed event kernel and interprets every event live.
//! * [`CompiledEngine`](crate::compiled::CompiledEngine) pre-computes
//!   per-core schedules for contention-free regions and replays them,
//!   falling back to live event handling at NoC / shared-memory
//!   boundaries. Its output is byte-identical to the event engine's.
//!
//! Both engines drive the same kernel and the same machine state, so the
//! deterministic `(time, seq)` event stream — and with it every `f64`
//! energy accumulation order — is common property, not per-engine code.

use std::fmt;

use pimsim_event::{Kernel, RunResult, SimTime};

use super::{Machine, MachineEvent};
use crate::stats::ScheduleStats;

/// A built machine plus the run horizon, handed to an [`Engine`]. Opaque
/// outside the crate: the machine's internals are not API.
pub struct EngineInput<'a> {
    pub(crate) machine: Machine<'a>,
    pub(crate) horizon: SimTime,
    /// Cross-run region store, when the caller opted into one with
    /// [`Simulator::with_schedule_cache`](super::Simulator::with_schedule_cache).
    /// Ignored by engines that pre-compute nothing.
    pub(crate) cache: Option<&'a crate::compiled::ScheduleCache>,
}

/// What an [`Engine`] hands back: the final machine state, why the run
/// loop returned, and the executed-event accounting.
pub struct EngineOutput<'a> {
    pub(crate) machine: Machine<'a>,
    pub(crate) result: RunResult,
    pub(crate) events: u64,
    pub(crate) schedule: ScheduleStats,
}

/// Drives a built machine to completion.
///
/// Implementations must preserve the reference event stream exactly: the
/// same events, in the same `(time, seq)` order, with the same telemetry
/// mutations — [`Simulator`](super::Simulator) output is byte-compared
/// across engines by the test suite and the CI determinism gate.
pub trait Engine: fmt::Debug + Send + Sync {
    /// Short identifier (`"event"` / `"compiled"`).
    fn name(&self) -> &'static str;

    /// Seeds the kernel and runs the machine until the queue drains, a
    /// handler stops the run, or `horizon` is reached.
    fn drive<'a>(&self, input: EngineInput<'a>) -> EngineOutput<'a>;
}

/// The reference engine: every event interpreted live by the machine's
/// own handlers. Default for every run.
#[derive(Debug, Clone, Copy, Default)]
pub struct EventEngine;

impl Engine for EventEngine {
    fn name(&self) -> &'static str {
        "event"
    }

    fn drive<'a>(&self, input: EngineInput<'a>) -> EngineOutput<'a> {
        let EngineInput {
            machine, horizon, ..
        } = input;
        let n_cores = machine.cores.len();
        let mut kernel = Kernel::new(machine);
        for c in 0..n_cores {
            if !kernel.world().cores[c].halted {
                kernel.schedule_at(SimTime::ZERO, MachineEvent::Advance { core: c });
            }
        }
        let result = kernel.run_until(horizon);
        let events = kernel.stats().executed;
        EngineOutput {
            machine: kernel.into_world(),
            result,
            events,
            schedule: ScheduleStats {
                events_dispatched: events,
                ..ScheduleStats::default()
            },
        }
    }
}

/// Engine selection by name, for CLI flags and sweep axes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// The live event-kernel interpreter (default, reference model).
    #[default]
    Event,
    /// The compiled scheduler with event-kernel fallback.
    Compiled,
}

impl EngineKind {
    /// Every selectable engine.
    pub const ALL: [EngineKind; 2] = [EngineKind::Event, EngineKind::Compiled];

    /// The engine's short name.
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Event => "event",
            EngineKind::Compiled => "compiled",
        }
    }

    /// The engine implementation this kind selects.
    pub fn engine(self) -> &'static dyn Engine {
        static EVENT: EventEngine = EventEngine;
        static COMPILED: crate::compiled::CompiledEngine = crate::compiled::CompiledEngine;
        match self {
            EngineKind::Event => &EVENT,
            EngineKind::Compiled => &COMPILED,
        }
    }
}

impl fmt::Display for EngineKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for EngineKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "event" => Ok(EngineKind::Event),
            "compiled" => Ok(EngineKind::Compiled),
            other => Err(format!("unknown engine `{other}` (want event or compiled)")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_kinds_parse_and_print() {
        assert_eq!("event".parse::<EngineKind>().unwrap(), EngineKind::Event);
        assert_eq!(
            "compiled".parse::<EngineKind>().unwrap(),
            EngineKind::Compiled
        );
        assert!("jit".parse::<EngineKind>().is_err());
        assert_eq!(EngineKind::default(), EngineKind::Event);
        for kind in EngineKind::ALL {
            assert_eq!(kind.to_string(), kind.name());
            assert_eq!(kind.engine().name(), kind.name());
        }
    }

    #[test]
    fn engine_trait_is_object_safe() {
        fn takes_dyn(e: &dyn Engine) -> &'static str {
            e.name()
        }
        assert_eq!(takes_dyn(&EventEngine), "event");
    }
}

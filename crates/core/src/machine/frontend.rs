//! The per-core frontend: fetch/decode/dispatch pacing and at-dispatch
//! scalar execution.
//!
//! Instructions dispatch in order, at most one per
//! [`TimingModel::dispatch_interval`](super::TimingModel::dispatch_interval).
//! Scalar instructions (ALU, branches, jumps) execute right here — loops
//! and address arithmetic never enter the ROB. Memory-class instructions
//! get their operands resolved against the register file and are handed
//! to the ROB, after which the issue logic in [`super::units`] takes over.

use pimsim_isa::{BranchCond, InstrClass, Instruction, SBinOp, SImmOp};

use super::{Ctx, EnergyField, Machine, MachineEvent};
use crate::resolve::{resolve, Resolved};

impl Machine<'_> {
    /// Dispatches as many instructions as the frontend rules allow at the
    /// current time, scheduling a pacing wake-up when throttled.
    pub(crate) fn try_advance(&mut self, c: usize, ctx: &mut Ctx) {
        self.finish_time = self.finish_time.max(ctx.now());
        loop {
            if self.error.is_some() || self.cores[c].halted {
                return;
            }
            let now = ctx.now();
            {
                let core = &mut self.cores[c];
                if core.rob.len() >= core.rob_size {
                    return; // a completion will re-trigger us
                }
                if core.next_dispatch > now {
                    if !core.advance_pending {
                        core.advance_pending = true;
                        let at = core.next_dispatch;
                        ctx.schedule_at(at, MachineEvent::Advance { core: c });
                    }
                    return;
                }
            }
            let pc = self.cores[c].pc as usize;
            let Some(instr) = self.cores[c].instrs.get(pc).cloned() else {
                self.cores[c].halted = true;
                return;
            };
            let tag = self.cores[c].tags.get(pc).copied().unwrap_or(0);
            let dispatch_at = self.cores[c].next_dispatch.max(now);
            self.cores[c].next_dispatch = dispatch_at + self.dispatch_interval;
            self.cores[c].stats.dispatched += 1;
            self.telemetry.count_dispatch(tag);
            let frontend_energy = self.timing.frontend_energy(self.cfg);
            self.telemetry
                .add_energy(EnergyField::Frontend, frontend_energy);

            match resolve(&instr, &self.cores[c].regs) {
                None => {
                    // Scalar class: execute at dispatch.
                    self.telemetry.count_class(3);
                    let scalar_energy = self.timing.scalar_cost(self.cfg).energy;
                    self.telemetry
                        .add_energy(EnergyField::Scalar, scalar_energy);
                    if self.telemetry.trace_live() {
                        self.telemetry
                            .record_trace(dispatch_at, c as u16, instr.to_string());
                    }
                    self.exec_scalar(c, &instr);
                }
                Some(res) => {
                    self.enter_rob(c, tag, &instr, res);
                    self.try_issue(c, ctx);
                    continue;
                }
            }
        }
    }

    /// Classifies a resolved instruction, allocates its ROB entry, and
    /// advances the program counter past it.
    fn enter_rob(&mut self, c: usize, tag: u16, instr: &Instruction, res: Resolved) {
        let class = instr.class();
        match class {
            InstrClass::Matrix => self.telemetry.count_class(0),
            InstrClass::Vector => self.telemetry.count_class(1),
            InstrClass::Transfer => self.telemetry.count_class(2),
            InstrClass::Scalar => unreachable!("resolved scalar"),
        }
        let text = self.telemetry.trace_live().then(|| instr.to_string());
        let core = &mut self.cores[c];
        core.admit(tag, class, res, text);
        core.pc += 1;
    }

    /// Executes a scalar instruction against the register file, updating
    /// the program counter (branches and jumps set it directly).
    pub(crate) fn exec_scalar(&mut self, c: usize, instr: &Instruction) {
        let core = &mut self.cores[c];
        let rd_write = |regs: &mut [i32; 32], rd: pimsim_isa::Reg, v: i32| {
            if !rd.is_zero() {
                regs[rd.index() as usize] = v;
            }
        };
        match instr {
            Instruction::SBin { op, rd, rs1, rs2 } => {
                let a = core.regs[rs1.index() as usize];
                let b = core.regs[rs2.index() as usize];
                let v = match op {
                    SBinOp::Add => a.wrapping_add(b),
                    SBinOp::Sub => a.wrapping_sub(b),
                    SBinOp::Mul => a.wrapping_mul(b),
                    SBinOp::And => a & b,
                    SBinOp::Or => a | b,
                    SBinOp::Xor => a ^ b,
                    SBinOp::Slt => (a < b) as i32,
                    SBinOp::Sll => ((a as u32) << (b as u32 & 31)) as i32,
                    SBinOp::Srl => ((a as u32) >> (b as u32 & 31)) as i32,
                };
                rd_write(&mut core.regs, *rd, v);
                core.pc += 1;
            }
            Instruction::SImm { op, rd, rs1, imm } => {
                let a = core.regs[rs1.index() as usize];
                let v = match op {
                    SImmOp::Add => a.wrapping_add(*imm),
                    SImmOp::Mul => a.wrapping_mul(*imm),
                    SImmOp::Sll => ((a as u32) << (*imm as u32 & 31)) as i32,
                    SImmOp::Srl => ((a as u32) >> (*imm as u32 & 31)) as i32,
                    SImmOp::And => a & *imm,
                    SImmOp::Or => a | *imm,
                    SImmOp::Slt => (a < *imm) as i32,
                };
                rd_write(&mut core.regs, *rd, v);
                core.pc += 1;
            }
            Instruction::Branch {
                cond,
                rs1,
                rs2,
                target,
            } => {
                let a = core.regs[rs1.index() as usize];
                let b = core.regs[rs2.index() as usize];
                let taken = match cond {
                    BranchCond::Eq => a == b,
                    BranchCond::Ne => a != b,
                    BranchCond::Lt => a < b,
                    BranchCond::Ge => a >= b,
                };
                core.pc = if taken { *target } else { core.pc + 1 };
            }
            Instruction::Jump { target } => core.pc = *target,
            Instruction::Halt => core.halted = true,
            Instruction::Nop => core.pc += 1,
            _ => unreachable!("memory-class instruction in exec_scalar"),
        }
    }
}

//! The simulation error taxonomy.

use std::error::Error;
use std::fmt;

use pimsim_arch::ArchError;
use pimsim_event::SimTime;
use pimsim_isa::IsaError;

/// Errors produced by a simulation run.
#[derive(Debug)]
pub enum SimError {
    /// The program failed validation against the architecture.
    InvalidProgram(IsaError),
    /// The architecture configuration is invalid.
    Arch(ArchError),
    /// Simulation stopped making progress before all cores halted
    /// (mismatched rendezvous, circular wait...).
    Deadlock {
        /// Time at which the event queue drained.
        time: SimTime,
        /// Human-readable description of stuck cores.
        detail: String,
    },
    /// The opt-in pre-flight static analysis
    /// ([`crate::Simulator::with_preflight`]) found provable defects —
    /// the run was refused before the first event fired.
    StaticAnalysis {
        /// The analyzer's error-severity findings, one per line.
        detail: String,
    },
    /// The `sim.max_cycles` safety horizon was reached.
    Timeout {
        /// The horizon, in core cycles.
        max_cycles: u64,
    },
    /// A matched send/recv pair disagreed on payload length.
    TagMismatch {
        /// Description of the mismatching pair.
        detail: String,
    },
    /// A transfer addressed memory outside the receiving core's local
    /// address space (e.g. a strided `RECV` whose destination goes
    /// negative). Such accesses used to clamp to address 0 and silently
    /// corrupt local memory.
    MemoryFault {
        /// The core whose local memory was addressed.
        core: u16,
        /// Description of the out-of-range access.
        detail: String,
    },
    /// An internal simulator invariant broke mid-run (e.g. a transfer
    /// completion with no matching ROB entry). Always a simulator bug —
    /// surfaced immediately instead of masked, so it cannot decay into a
    /// mystery deadlock with stuck credits.
    Internal {
        /// Description of the violated invariant.
        detail: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidProgram(e) => write!(f, "invalid program: {e}"),
            SimError::Arch(e) => write!(f, "invalid architecture: {e}"),
            SimError::Deadlock { time, detail } => {
                write!(f, "deadlock at {time}: {detail}")
            }
            SimError::StaticAnalysis { detail } => {
                write!(
                    f,
                    "pre-flight static analysis rejected the program:\n{detail}"
                )
            }
            SimError::Timeout { max_cycles } => {
                write!(
                    f,
                    "simulation exceeded the {max_cycles}-cycle safety horizon"
                )
            }
            SimError::TagMismatch { detail } => write!(f, "transfer tag mismatch: {detail}"),
            SimError::MemoryFault { core, detail } => {
                write!(f, "memory fault on core{core}: {detail}")
            }
            SimError::Internal { detail } => {
                write!(f, "internal simulator invariant violated: {detail}")
            }
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::InvalidProgram(e) => Some(e),
            SimError::Arch(e) => Some(e),
            _ => None,
        }
    }
}

impl From<IsaError> for SimError {
    fn from(e: IsaError) -> Self {
        SimError::InvalidProgram(e)
    }
}

impl From<ArchError> for SimError {
    fn from(e: ArchError) -> Self {
        SimError::Arch(e)
    }
}

#![warn(missing_docs)]

//! The cycle-accurate, event-driven PIMSIM-NN simulator (paper §III-B).
//!
//! The simulated accelerator follows the hierarchical architecture of
//! Fig. 2: a chip is a 2-D mesh of cores plus a global memory; each core
//! has a frontend (fetch/decode/dispatch), a configurable **re-order
//! buffer** (ROB), a scalar register file, a local scratchpad, and the four
//! execution units matching the ISA's instruction classes.
//!
//! ## Core model
//!
//! Instructions dispatch **in order** at `dispatch_width` per cycle.
//! Scalar instructions (ALU, branches, jumps) execute at dispatch — loops
//! and address arithmetic never enter the ROB. Matrix/vector/transfer
//! instructions enter the ROB with operand addresses resolved from the
//! register file, then *issue* to their execution unit once:
//!
//! * no older in-flight instruction has a conflicting local-memory range
//!   (RAW / WAW / WAR interval checks),
//! * the unit is free — the matrix unit accepts any number of concurrent
//!   `MVM`s **as long as their crossbar sets are disjoint**; overlapping
//!   sets serialize (the paper's *structure hazard*, the Fig. 4 knee),
//! * for transfers, the unit is single-occupancy and synchronized: a
//!   `SEND` occupies the unit until its matching `RECV` has been posted
//!   and the payload has crossed the mesh (rendezvous semantics).
//!
//! Completed instructions retire in order from the ROB head. Latencies and
//! energies come from [`pimsim_arch::model::CostModel`] — the same tables
//! the MNSIM2.0-like baseline uses, so simulator comparisons isolate
//! *scheduling* differences only.
//!
//! ## NoC model
//!
//! XY routing over per-link occupancy: a packet reserves each link along
//! its path in sequence (`1 + ceil(bytes/flit)` flits, one header), so
//! contention, serialization and distance all shape communication time.
//! The global memory controller sits at mesh corner (0,0) with its own
//! service queue.
//!
//! ## Functional mode
//!
//! With `sim.functional = true`, vector/matrix/transfer payloads execute
//! with the shared integer semantics of `pimsim-nn`'s golden model, so a
//! compiled network's output can be compared bit-exactly against the
//! reference forward pass (the end-to-end correctness tests do exactly
//! this). Scalar registers are always functional.
//!
//! # Example
//!
//! ```rust
//! use pimsim_arch::ArchConfig;
//! use pimsim_core::Simulator;
//! use pimsim_isa::asm;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let arch = ArchConfig::small_test();
//! let program = asm::assemble(r#"
//!     .core 0
//!     vfill [r1+0], 7, 64
//!     send core1, [r1+0], 64, tag=1
//!     halt
//!     .core 1
//!     recv core0, [r2+0], 64, tag=1
//!     halt
//! "#)?;
//! let report = Simulator::new(&arch).run(&program)?;
//! assert!(report.latency.as_ns_f64() > 0.0);
//! assert_eq!(report.read_local(1, 0, 1)[0], 7); // payload arrived
//! # Ok(())
//! # }
//! ```

mod compiled;
mod exec;
mod machine;
mod noc;
mod resolve;
mod stats;

pub use compiled::{CompiledEngine, ScheduleCache};
pub use machine::{
    DefaultTiming, Engine, EngineInput, EngineKind, EngineOutput, EventEngine, SimError, Simulator,
    TimingModel,
};
pub use noc::{
    routing_for, Adaptive, AdaptiveRoute, DimOrder, Noc, NocCosts, Route, Routing, Xy,
    XyYxAlternate, Yx, MEM_NODE, PORTS,
};
pub use stats::{
    CoreStats, EnergyBreakdown, NodeStats, ScheduleStats, SimReport, TraceEntry, TRACE_CAP,
};

/// Result alias for fallible simulation.
pub type Result<T> = std::result::Result<T, SimError>;

//! The model zoo: builders for every network the paper evaluates.
//!
//! Fig. 3 / Fig. 4 use `alexnet`, `googlenet`, `resnet18`, `squeezenet`;
//! Fig. 5 (the MNSIM2.0 comparison) uses `vgg8`, `vgg16`, `resnet18` —
//! the “modified” concat-free networks shipped with MNSIM2.0's source.
//!
//! Every builder takes the input resolution so experiments can run at
//! reduced scale (the paper's figures are *normalized*, so shape — not
//! absolute size — is what matters; see EXPERIMENTS.md for the resolutions
//! used). Layer graphs follow the standard architectures; LRN layers
//! (AlexNet/GoogLeNet) are omitted as is customary in modern
//! re-implementations, and aux classifiers are dropped from GoogLeNet.

use crate::layer::{Activation, Layer};
use crate::network::{Network, NetworkBuilder, PortRef};
use crate::shape::Shape;

const RELU: Option<Activation> = Some(Activation::Relu);

#[allow(clippy::too_many_arguments)] // the arguments are the conv hyper-parameters
fn conv(
    b: &mut NetworkBuilder,
    name: &str,
    input: PortRef,
    out_channels: u32,
    kernel: u32,
    stride: u32,
    padding: u32,
    activation: Option<Activation>,
) -> PortRef {
    b.add(
        name,
        Layer::Conv2d {
            out_channels,
            kernel,
            stride,
            padding,
            activation,
        },
        vec![input],
    )
}

fn maxpool(
    b: &mut NetworkBuilder,
    name: &str,
    input: PortRef,
    kernel: u32,
    stride: u32,
    padding: u32,
) -> PortRef {
    b.add(
        name,
        Layer::MaxPool2d {
            kernel,
            stride,
            padding,
        },
        vec![input],
    )
}

fn linear(
    b: &mut NetworkBuilder,
    name: &str,
    input: PortRef,
    out: u32,
    act: Option<Activation>,
) -> PortRef {
    b.add(
        name,
        Layer::Linear {
            out_features: out,
            activation: act,
        },
        vec![input],
    )
}

/// A 3-layer MLP over a flat 64-element input. The smallest end-to-end
/// test subject: `64 -> 32 -> 16 -> 10`.
pub fn tiny_mlp() -> Network {
    let mut b = Network::builder("tiny_mlp", Shape::flat(64));
    let h1 = linear(&mut b, "fc1", PortRef::Input, 32, RELU);
    let h2 = linear(&mut b, "fc2", h1, 16, RELU);
    linear(&mut b, "fc3", h2, 10, None);
    b.finish().expect("tiny_mlp is well-formed")
}

/// A small CNN exercising every operator kind (conv, max/avg pool, residual
/// add, concat, global pool, flatten, linear, standalone activation) on an
/// 8×8×3 input. Used heavily by functional end-to-end tests.
pub fn tiny_cnn() -> Network {
    let mut b = Network::builder("tiny_cnn", Shape::new(8, 8, 3));
    let c1 = conv(&mut b, "conv1", PortRef::Input, 8, 3, 1, 1, RELU);
    // Residual pair on 8 channels.
    let c2 = conv(&mut b, "conv2", c1, 8, 3, 1, 1, None);
    let add = b.add("res_add", Layer::Add { activation: RELU }, vec![c1, c2]);
    // Two-branch concat (1x1 and 3x3), inception-style.
    let b1 = conv(&mut b, "branch1x1", add, 4, 1, 1, 0, RELU);
    let b3 = conv(&mut b, "branch3x3", add, 4, 3, 1, 1, RELU);
    let cat = b.add("concat", Layer::Concat, vec![b1, b3]);
    let p1 = maxpool(&mut b, "pool1", cat, 2, 2, 0);
    let a1 = b.add(
        "avg",
        Layer::AvgPool2d {
            kernel: 2,
            stride: 2,
            padding: 0,
        },
        vec![p1],
    );
    let act = b.add("act", Layer::Activation(Activation::Relu), vec![a1]);
    let gap = b.add("gap", Layer::GlobalAvgPool, vec![act]);
    linear(&mut b, "fc", gap, 10, None);
    b.finish().expect("tiny_cnn is well-formed")
}

/// AlexNet (LRN omitted). Minimum sensible `input_hw` is 64.
pub fn alexnet(input_hw: u32) -> Network {
    let mut b = Network::builder("alexnet", Shape::new(input_hw, input_hw, 3));
    let c1 = conv(&mut b, "conv1", PortRef::Input, 96, 11, 4, 2, RELU);
    let p1 = maxpool(&mut b, "pool1", c1, 3, 2, 0);
    let c2 = conv(&mut b, "conv2", p1, 256, 5, 1, 2, RELU);
    let p2 = maxpool(&mut b, "pool2", c2, 3, 2, 0);
    let c3 = conv(&mut b, "conv3", p2, 384, 3, 1, 1, RELU);
    let c4 = conv(&mut b, "conv4", c3, 384, 3, 1, 1, RELU);
    let c5 = conv(&mut b, "conv5", c4, 256, 3, 1, 1, RELU);
    let p5 = maxpool(&mut b, "pool5", c5, 3, 2, 0);
    let f = b.add("flatten", Layer::Flatten, vec![p5]);
    let fc6 = linear(&mut b, "fc6", f, 4096, RELU);
    let fc7 = linear(&mut b, "fc7", fc6, 4096, RELU);
    linear(&mut b, "fc8", fc7, 1000, None);
    b.finish().expect("alexnet is well-formed")
}

/// One GoogLeNet inception module.
#[allow(clippy::too_many_arguments)]
fn inception(
    b: &mut NetworkBuilder,
    name: &str,
    input: PortRef,
    ch1: u32,
    ch3r: u32,
    ch3: u32,
    ch5r: u32,
    ch5: u32,
    pool_proj: u32,
) -> PortRef {
    let b1 = conv(b, &format!("{name}/1x1"), input, ch1, 1, 1, 0, RELU);
    let b3r = conv(b, &format!("{name}/3x3_reduce"), input, ch3r, 1, 1, 0, RELU);
    let b3 = conv(b, &format!("{name}/3x3"), b3r, ch3, 3, 1, 1, RELU);
    let b5r = conv(b, &format!("{name}/5x5_reduce"), input, ch5r, 1, 1, 0, RELU);
    let b5 = conv(b, &format!("{name}/5x5"), b5r, ch5, 5, 1, 2, RELU);
    let bp = maxpool(b, &format!("{name}/pool"), input, 3, 1, 1);
    let bpp = conv(
        b,
        &format!("{name}/pool_proj"),
        bp,
        pool_proj,
        1,
        1,
        0,
        RELU,
    );
    b.add(
        format!("{name}/concat"),
        Layer::Concat,
        vec![b1, b3, b5, bpp],
    )
}

/// GoogLeNet (Inception v1, aux classifiers dropped, LRN omitted).
/// Minimum sensible `input_hw` is 64.
pub fn googlenet(input_hw: u32) -> Network {
    let mut b = Network::builder("googlenet", Shape::new(input_hw, input_hw, 3));
    let c1 = conv(&mut b, "conv1", PortRef::Input, 64, 7, 2, 3, RELU);
    let p1 = maxpool(&mut b, "pool1", c1, 3, 2, 1);
    let c2r = conv(&mut b, "conv2_reduce", p1, 64, 1, 1, 0, RELU);
    let c2 = conv(&mut b, "conv2", c2r, 192, 3, 1, 1, RELU);
    let p2 = maxpool(&mut b, "pool2", c2, 3, 2, 1);
    let i3a = inception(&mut b, "3a", p2, 64, 96, 128, 16, 32, 32);
    let i3b = inception(&mut b, "3b", i3a, 128, 128, 192, 32, 96, 64);
    let p3 = maxpool(&mut b, "pool3", i3b, 3, 2, 1);
    let i4a = inception(&mut b, "4a", p3, 192, 96, 208, 16, 48, 64);
    let i4b = inception(&mut b, "4b", i4a, 160, 112, 224, 24, 64, 64);
    let i4c = inception(&mut b, "4c", i4b, 128, 128, 256, 24, 64, 64);
    let i4d = inception(&mut b, "4d", i4c, 112, 144, 288, 32, 64, 64);
    let i4e = inception(&mut b, "4e", i4d, 256, 160, 320, 32, 128, 128);
    let p4 = maxpool(&mut b, "pool4", i4e, 3, 2, 1);
    let i5a = inception(&mut b, "5a", p4, 256, 160, 320, 32, 128, 128);
    let i5b = inception(&mut b, "5b", i5a, 384, 192, 384, 48, 128, 128);
    let gap = b.add("gap", Layer::GlobalAvgPool, vec![i5b]);
    linear(&mut b, "fc", gap, 1000, None);
    b.finish().expect("googlenet is well-formed")
}

/// One ResNet basic block (two 3×3 convs + identity/projection shortcut).
fn basic_block(
    b: &mut NetworkBuilder,
    name: &str,
    input: PortRef,
    channels: u32,
    stride: u32,
    project: bool,
) -> PortRef {
    let c1 = conv(
        b,
        &format!("{name}/conv1"),
        input,
        channels,
        3,
        stride,
        1,
        RELU,
    );
    let c2 = conv(b, &format!("{name}/conv2"), c1, channels, 3, 1, 1, None);
    let shortcut = if project {
        conv(
            b,
            &format!("{name}/downsample"),
            input,
            channels,
            1,
            stride,
            0,
            None,
        )
    } else {
        input
    };
    b.add(
        format!("{name}/add"),
        Layer::Add { activation: RELU },
        vec![shortcut, c2],
    )
}

/// ResNet-18. Minimum sensible `input_hw` is 32.
pub fn resnet18(input_hw: u32) -> Network {
    let mut b = Network::builder("resnet18", Shape::new(input_hw, input_hw, 3));
    let c1 = conv(&mut b, "conv1", PortRef::Input, 64, 7, 2, 3, RELU);
    let p1 = maxpool(&mut b, "pool1", c1, 3, 2, 1);
    let l1a = basic_block(&mut b, "layer1.0", p1, 64, 1, false);
    let l1b = basic_block(&mut b, "layer1.1", l1a, 64, 1, false);
    let l2a = basic_block(&mut b, "layer2.0", l1b, 128, 2, true);
    let l2b = basic_block(&mut b, "layer2.1", l2a, 128, 1, false);
    let l3a = basic_block(&mut b, "layer3.0", l2b, 256, 2, true);
    let l3b = basic_block(&mut b, "layer3.1", l3a, 256, 1, false);
    let l4a = basic_block(&mut b, "layer4.0", l3b, 512, 2, true);
    let l4b = basic_block(&mut b, "layer4.1", l4a, 512, 1, false);
    let gap = b.add("gap", Layer::GlobalAvgPool, vec![l4b]);
    linear(&mut b, "fc", gap, 1000, None);
    b.finish().expect("resnet18 is well-formed")
}

/// One SqueezeNet fire module (squeeze 1×1, expand 1×1 ‖ 3×3, concat).
fn fire(b: &mut NetworkBuilder, name: &str, input: PortRef, squeeze: u32, expand: u32) -> PortRef {
    let s = conv(b, &format!("{name}/squeeze"), input, squeeze, 1, 1, 0, RELU);
    let e1 = conv(b, &format!("{name}/expand1x1"), s, expand, 1, 1, 0, RELU);
    let e3 = conv(b, &format!("{name}/expand3x3"), s, expand, 3, 1, 1, RELU);
    b.add(format!("{name}/concat"), Layer::Concat, vec![e1, e3])
}

/// SqueezeNet v1.0. Minimum sensible `input_hw` is 64.
pub fn squeezenet(input_hw: u32) -> Network {
    let mut b = Network::builder("squeezenet", Shape::new(input_hw, input_hw, 3));
    let c1 = conv(&mut b, "conv1", PortRef::Input, 96, 7, 2, 0, RELU);
    let p1 = maxpool(&mut b, "pool1", c1, 3, 2, 0);
    let f2 = fire(&mut b, "fire2", p1, 16, 64);
    let f3 = fire(&mut b, "fire3", f2, 16, 64);
    let f4 = fire(&mut b, "fire4", f3, 32, 128);
    let p4 = maxpool(&mut b, "pool4", f4, 3, 2, 0);
    let f5 = fire(&mut b, "fire5", p4, 32, 128);
    let f6 = fire(&mut b, "fire6", f5, 48, 192);
    let f7 = fire(&mut b, "fire7", f6, 48, 192);
    let f8 = fire(&mut b, "fire8", f7, 64, 256);
    let p8 = maxpool(&mut b, "pool8", f8, 3, 2, 0);
    let f9 = fire(&mut b, "fire9", p8, 64, 256);
    let c10 = conv(&mut b, "conv10", f9, 1000, 1, 1, 0, RELU);
    b.add("gap", Layer::GlobalAvgPool, vec![c10]);
    b.finish().expect("squeezenet is well-formed")
}

/// VGG-8 (the CIFAR-scale network from the MNSIM2.0 examples): six 3×3
/// conv layers in three pooled stages, then two FC layers. Default
/// `input_hw` is 32.
pub fn vgg8(input_hw: u32) -> Network {
    let mut b = Network::builder("vgg8", Shape::new(input_hw, input_hw, 3));
    let c1 = conv(&mut b, "conv1", PortRef::Input, 128, 3, 1, 1, RELU);
    let c2 = conv(&mut b, "conv2", c1, 128, 3, 1, 1, RELU);
    let p1 = maxpool(&mut b, "pool1", c2, 2, 2, 0);
    let c3 = conv(&mut b, "conv3", p1, 256, 3, 1, 1, RELU);
    let c4 = conv(&mut b, "conv4", c3, 256, 3, 1, 1, RELU);
    let p2 = maxpool(&mut b, "pool2", c4, 2, 2, 0);
    let c5 = conv(&mut b, "conv5", p2, 512, 3, 1, 1, RELU);
    let c6 = conv(&mut b, "conv6", c5, 512, 3, 1, 1, RELU);
    let p3 = maxpool(&mut b, "pool3", c6, 2, 2, 0);
    let f = b.add("flatten", Layer::Flatten, vec![p3]);
    let fc1 = linear(&mut b, "fc1", f, 1024, RELU);
    linear(&mut b, "fc2", fc1, 10, None);
    b.finish().expect("vgg8 is well-formed")
}

/// VGG-16. Works from `input_hw` 32 upward.
pub fn vgg16(input_hw: u32) -> Network {
    let mut b = Network::builder("vgg16", Shape::new(input_hw, input_hw, 3));
    let mut x = PortRef::Input;
    let stages: [(u32, u32); 5] = [(64, 2), (128, 2), (256, 3), (512, 3), (512, 3)];
    for (si, (ch, n)) in stages.iter().enumerate() {
        for li in 0..*n {
            x = conv(
                &mut b,
                &format!("conv{}_{}", si + 1, li + 1),
                x,
                *ch,
                3,
                1,
                1,
                RELU,
            );
        }
        x = maxpool(&mut b, &format!("pool{}", si + 1), x, 2, 2, 0);
    }
    let f = b.add("flatten", Layer::Flatten, vec![x]);
    let fc1 = linear(&mut b, "fc1", f, 4096, RELU);
    let fc2 = linear(&mut b, "fc2", fc1, 4096, RELU);
    linear(&mut b, "fc3", fc2, 1000, None);
    b.finish().expect("vgg16 is well-formed")
}

/// LeNet-5 (tanh activations, average pooling) — the classic 32×32
/// grayscale digit classifier; exercises the tanh LUT and average-pool
/// paths end to end.
pub fn lenet(input_hw: u32) -> Network {
    let mut b = Network::builder("lenet", Shape::new(input_hw, input_hw, 1));
    const TANH: Option<Activation> = Some(Activation::Tanh);
    let c1 = conv(&mut b, "c1", PortRef::Input, 6, 5, 1, 0, TANH);
    let s2 = b.add(
        "s2",
        Layer::AvgPool2d {
            kernel: 2,
            stride: 2,
            padding: 0,
        },
        vec![c1],
    );
    let c3 = conv(&mut b, "c3", s2, 16, 5, 1, 0, TANH);
    let s4 = b.add(
        "s4",
        Layer::AvgPool2d {
            kernel: 2,
            stride: 2,
            padding: 0,
        },
        vec![c3],
    );
    let c5 = conv(&mut b, "c5", s4, 120, 5, 1, 0, TANH);
    let f = b.add("flatten", Layer::Flatten, vec![c5]);
    let f6 = linear(&mut b, "f6", f, 84, TANH);
    linear(&mut b, "output", f6, 10, None);
    b.finish().expect("lenet is well-formed")
}

/// VGG-11 (configuration A). Works from `input_hw` 32 upward.
pub fn vgg11(input_hw: u32) -> Network {
    let mut b = Network::builder("vgg11", Shape::new(input_hw, input_hw, 3));
    let mut x = PortRef::Input;
    let stages: [(u32, u32); 5] = [(64, 1), (128, 1), (256, 2), (512, 2), (512, 2)];
    for (si, (ch, n)) in stages.iter().enumerate() {
        for li in 0..*n {
            x = conv(
                &mut b,
                &format!("conv{}_{}", si + 1, li + 1),
                x,
                *ch,
                3,
                1,
                1,
                RELU,
            );
        }
        x = maxpool(&mut b, &format!("pool{}", si + 1), x, 2, 2, 0);
    }
    let f = b.add("flatten", Layer::Flatten, vec![x]);
    let fc1 = linear(&mut b, "fc1", f, 4096, RELU);
    let fc2 = linear(&mut b, "fc2", fc1, 4096, RELU);
    linear(&mut b, "fc3", fc2, 1000, None);
    b.finish().expect("vgg11 is well-formed")
}

/// ResNet-34: the deeper basic-block residual network
/// (stage depths 3/4/6/3). Minimum sensible `input_hw` is 32.
pub fn resnet34(input_hw: u32) -> Network {
    let mut b = Network::builder("resnet34", Shape::new(input_hw, input_hw, 3));
    let c1 = conv(&mut b, "conv1", PortRef::Input, 64, 7, 2, 3, RELU);
    let mut x = maxpool(&mut b, "pool1", c1, 3, 2, 1);
    let stages: [(u32, u32); 4] = [(64, 3), (128, 4), (256, 6), (512, 3)];
    for (si, (ch, blocks)) in stages.iter().enumerate() {
        for bi in 0..*blocks {
            let stride = if si > 0 && bi == 0 { 2 } else { 1 };
            let project = si > 0 && bi == 0;
            x = basic_block(
                &mut b,
                &format!("layer{}.{}", si + 1, bi),
                x,
                *ch,
                stride,
                project,
            );
        }
    }
    let gap = b.add("gap", Layer::GlobalAvgPool, vec![x]);
    linear(&mut b, "fc", gap, 1000, None);
    b.finish().expect("resnet34 is well-formed")
}

/// Looks up a zoo network by name at a given input resolution. Names:
/// `alexnet`, `googlenet`, `resnet18`, `squeezenet`, `vgg8`, `vgg16`,
/// `tiny_mlp`, `tiny_cnn`.
pub fn by_name(name: &str, input_hw: u32) -> Option<Network> {
    let net = match name {
        "alexnet" => alexnet(input_hw),
        "googlenet" => googlenet(input_hw),
        "resnet18" => resnet18(input_hw),
        "squeezenet" => squeezenet(input_hw),
        "vgg8" => vgg8(input_hw),
        "vgg11" => vgg11(input_hw),
        "vgg16" => vgg16(input_hw),
        "lenet" => lenet(input_hw),
        "resnet34" => resnet34(input_hw),
        "tiny_mlp" => tiny_mlp(),
        "tiny_cnn" => tiny_cnn(),
        _ => return None,
    };
    Some(net)
}

/// All zoo network names accepted by [`by_name`].
pub const NAMES: &[&str] = &[
    "alexnet",
    "googlenet",
    "lenet",
    "resnet18",
    "resnet34",
    "squeezenet",
    "vgg8",
    "vgg11",
    "vgg16",
    "tiny_mlp",
    "tiny_cnn",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_networks_validate_at_reference_resolutions() {
        for (name, hw) in [
            ("alexnet", 224),
            ("googlenet", 224),
            ("resnet18", 224),
            ("squeezenet", 224),
            ("vgg8", 32),
            ("vgg16", 224),
        ] {
            let net = by_name(name, hw).unwrap();
            net.validate()
                .unwrap_or_else(|e| panic!("{name}@{hw}: {e}"));
        }
    }

    #[test]
    fn all_networks_validate_at_reduced_resolutions() {
        for (name, hw) in [
            ("alexnet", 64),
            ("googlenet", 64),
            ("resnet18", 32),
            ("squeezenet", 64),
            ("vgg8", 32),
            ("vgg16", 32),
        ] {
            let net = by_name(name, hw).unwrap();
            net.validate()
                .unwrap_or_else(|e| panic!("{name}@{hw}: {e}"));
        }
    }

    #[test]
    fn classifier_widths() {
        assert_eq!(
            alexnet(224)
                .inferred_shapes()
                .unwrap()
                .last()
                .unwrap()
                .channels,
            1000
        );
        assert_eq!(
            vgg8(32).inferred_shapes().unwrap().last().unwrap().channels,
            10
        );
        assert_eq!(
            squeezenet(224)
                .inferred_shapes()
                .unwrap()
                .last()
                .unwrap()
                .channels,
            1000
        );
    }

    #[test]
    fn expected_layer_counts() {
        // AlexNet: 5 conv + 3 pool + flatten + 3 fc = 12 nodes.
        assert_eq!(alexnet(224).nodes.len(), 12);
        // GoogLeNet: 9 inception modules of 8 nodes each + stem/tail.
        let g = googlenet(224);
        assert_eq!(
            g.nodes
                .iter()
                .filter(|n| n.layer.kind_name() == "concat")
                .count(),
            9
        );
        // ResNet-18 has 8 residual adds and 20 convolutions (incl. 3 projections).
        let r = resnet18(224);
        assert_eq!(
            r.nodes
                .iter()
                .filter(|n| n.layer.kind_name() == "add")
                .count(),
            8
        );
        assert_eq!(
            r.nodes
                .iter()
                .filter(|n| n.layer.kind_name() == "conv")
                .count(),
            20
        );
        // SqueezeNet: 8 fire modules -> 8 concats.
        let s = squeezenet(224);
        assert_eq!(
            s.nodes
                .iter()
                .filter(|n| n.layer.kind_name() == "concat")
                .count(),
            8
        );
        // VGG-16: 13 convs + 3 fc.
        let v = vgg16(224);
        assert_eq!(v.nodes.iter().filter(|n| n.layer.has_weights()).count(), 16);
    }

    #[test]
    fn imagenet_shapes_match_reference() {
        let net = resnet18(224);
        let shapes = net.inferred_shapes().unwrap();
        // conv1 output: 112x112x64.
        assert_eq!(shapes[0], Shape::new(112, 112, 64));
        // pool1 output: 56x56x64.
        assert_eq!(shapes[1], Shape::new(56, 56, 64));
        // final: 1000 logits.
        assert_eq!(*shapes.last().unwrap(), Shape::flat(1000));

        let g = googlenet(224);
        let gs = g.inferred_shapes().unwrap();
        // inception 3a concat: 28x28x256.
        let i3a = g
            .nodes
            .iter()
            .position(|n| n.name == "3a/concat")
            .expect("3a exists");
        assert_eq!(gs[i3a], Shape::new(28, 28, 256));
    }

    #[test]
    fn extended_zoo_networks_validate() {
        for (name, hw) in [
            ("lenet", 32),
            ("vgg11", 32),
            ("resnet34", 32),
            ("resnet34", 224),
        ] {
            let net = by_name(name, hw).unwrap();
            net.validate()
                .unwrap_or_else(|e| panic!("{name}@{hw}: {e}"));
        }
        // ResNet-34: 16 basic blocks -> 16 adds; 36 convs total.
        let r = resnet34(224);
        assert_eq!(
            r.nodes
                .iter()
                .filter(|n| n.layer.kind_name() == "add")
                .count(),
            16
        );
        assert_eq!(
            r.nodes
                .iter()
                .filter(|n| n.layer.kind_name() == "conv")
                .count(),
            36
        );
        // ResNet-34 at 224 is ~3.6 GMACs in the literature.
        let g = r.total_macs() as f64 / 1e9;
        assert!((3.2..4.0).contains(&g), "resnet34 macs = {g} G");
        // LeNet uses tanh + avgpool exclusively.
        let l = lenet(32);
        assert!(l.nodes.iter().any(|n| n.layer.kind_name() == "avgpool"));
    }

    #[test]
    fn by_name_rejects_unknown() {
        assert!(by_name("transformer", 32).is_none());
        for n in NAMES {
            assert!(by_name(n, 64).is_some(), "{n} should build");
        }
    }

    #[test]
    fn macs_are_plausible() {
        // VGG-16 at 224 is ~15.5 GMACs in the literature.
        let v = vgg16(224);
        let g = v.total_macs() as f64 / 1e9;
        assert!((14.0..17.0).contains(&g), "vgg16 macs = {g} G");
        // ResNet-18 at 224 is ~1.8 GMACs.
        let r = resnet18(224).total_macs() as f64 / 1e9;
        assert!((1.5..2.1).contains(&r), "resnet18 macs = {r} G");
    }
}

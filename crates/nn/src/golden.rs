//! The golden functional model: a reference forward pass whose integer
//! semantics exactly match the simulator's functional mode.
//!
//! Shared arithmetic rules (also implemented by the vector/matrix units in
//! `pimsim-core`):
//!
//! * MVM accumulates in `i64` and saturates to `i32`.
//! * Additions (bias, residual) saturate.
//! * Requantization is an arithmetic shift right by `requant_shift`,
//!   applied to weight-layer outputs *after* bias, *before* activation.
//! * Average pooling divides the `i64` window sum by the window size with
//!   truncation toward zero.
//! * Sigmoid/tanh use the shared Q8.8 fixed-point helpers
//!   [`fixed_sigmoid`] / [`fixed_tanh`].

use crate::layer::{Activation, Layer};
use crate::network::{Network, NnError, PortRef};
use crate::shape::Shape;
use crate::weights::WeightGen;

/// Default requantization shift used by the compiler and tests.
pub const DEFAULT_REQUANT_SHIFT: u32 = 6;

/// Q8.8 fixed-point sigmoid: interprets `x` as `x / 256`, returns
/// `round(sigmoid(x/256) * 256)`.
pub fn fixed_sigmoid(x: i32) -> i32 {
    let v = x as f64 / 256.0;
    let y = 1.0 / (1.0 + (-v).exp());
    (y * 256.0).round() as i32
}

/// Q8.8 fixed-point tanh: interprets `x` as `x / 256`, returns
/// `round(tanh(x/256) * 256)`.
pub fn fixed_tanh(x: i32) -> i32 {
    let v = x as f64 / 256.0;
    (v.tanh() * 256.0).round() as i32
}

/// Applies an activation with the shared integer semantics.
pub fn apply_activation(act: Activation, x: i32) -> i32 {
    match act {
        Activation::Relu => x.max(0),
        Activation::Sigmoid => fixed_sigmoid(x),
        Activation::Tanh => fixed_tanh(x),
    }
}

/// The reference forward pass over a [`Network`] with [`WeightGen`]
/// synthetic weights.
///
/// ```rust
/// use pimsim_nn::{zoo, GoldenModel, WeightGen};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let net = zoo::tiny_mlp();
/// let gen = WeightGen::for_network(&net);
/// let golden = GoldenModel::new(&net, gen);
/// let input = gen.input(net.input_shape.elems());
/// let logits = golden.run(&input)?;
/// assert_eq!(logits.len(), 10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct GoldenModel<'a> {
    net: &'a Network,
    gen: WeightGen,
    shift: u32,
}

impl<'a> GoldenModel<'a> {
    /// Creates a model with the default requantization shift.
    pub fn new(net: &'a Network, gen: WeightGen) -> Self {
        GoldenModel {
            net,
            gen,
            shift: DEFAULT_REQUANT_SHIFT,
        }
    }

    /// Overrides the requantization shift (must match the compiler's).
    pub fn with_requant_shift(mut self, shift: u32) -> Self {
        self.shift = shift;
        self
    }

    /// Runs the network, returning the output node's tensor.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Shape`] if `input` does not match the network's
    /// input shape, or validation errors from the graph.
    pub fn run(&self, input: &[i32]) -> Result<Vec<i32>, NnError> {
        Ok(self
            .run_all(input)?
            .pop()
            .expect("validated net is non-empty"))
    }

    /// Runs the network, returning every node's output tensor in node
    /// order (useful to localize mismatches in tests).
    ///
    /// # Errors
    ///
    /// Same conditions as [`GoldenModel::run`].
    pub fn run_all(&self, input: &[i32]) -> Result<Vec<Vec<i32>>, NnError> {
        self.net.validate()?;
        if input.len() != self.net.input_shape.elems() as usize {
            return Err(NnError::Shape(format!(
                "input has {} elements, network expects {} ({})",
                input.len(),
                self.net.input_shape.elems(),
                self.net.input_shape
            )));
        }
        let shapes = self.net.inferred_shapes()?;
        let mut outputs: Vec<Vec<i32>> = Vec::with_capacity(self.net.nodes.len());
        for (i, node) in self.net.nodes.iter().enumerate() {
            let fetch = |p: &PortRef| -> (&[i32], Shape) {
                match p {
                    PortRef::Input => (input, self.net.input_shape),
                    PortRef::Node(id) => (&outputs[id.as_usize()], shapes[id.as_usize()]),
                }
            };
            let ins: Vec<(&[i32], Shape)> = node.inputs.iter().map(fetch).collect();
            let out_shape = shapes[i];
            let out = self.eval_layer(node.id.as_usize(), &node.layer, &ins, out_shape);
            debug_assert_eq!(out.len(), out_shape.elems() as usize);
            outputs.push(out);
        }
        Ok(outputs)
    }

    fn eval_layer(
        &self,
        node_idx: usize,
        layer: &Layer,
        ins: &[(&[i32], Shape)],
        out_shape: Shape,
    ) -> Vec<i32> {
        use crate::network::NodeId;
        let nid = NodeId(node_idx as u32);
        match layer {
            Layer::Conv2d {
                out_channels,
                kernel,
                stride,
                padding,
                activation,
            } => {
                let (data, s) = ins[0];
                let k = *kernel;
                let rows = k * k * s.channels;
                let w = self.gen.matrix(nid, rows, *out_channels);
                let bias = self.gen.bias(nid, *out_channels);
                let mut out = vec![0i32; out_shape.elems() as usize];
                let mut window = vec![0i32; rows as usize];
                for oy in 0..out_shape.height {
                    for ox in 0..out_shape.width {
                        gather_window(data, s, oy, ox, k, *stride, *padding, &mut window);
                        let acc = mvm(&window, &w, *out_channels);
                        for (c, a) in acc.into_iter().enumerate() {
                            let v = finish_weight_output(a, bias[c], self.shift, *activation);
                            out[out_shape.index(oy, ox, c as u32)] = v;
                        }
                    }
                }
                out
            }
            Layer::Linear {
                out_features,
                activation,
            } => {
                let (data, s) = ins[0];
                let rows = s.elems();
                let w = self.gen.matrix(nid, rows, *out_features);
                let bias = self.gen.bias(nid, *out_features);
                let acc = mvm(data, &w, *out_features);
                acc.into_iter()
                    .enumerate()
                    .map(|(c, a)| finish_weight_output(a, bias[c], self.shift, *activation))
                    .collect()
            }
            Layer::MaxPool2d {
                kernel,
                stride,
                padding,
            }
            | Layer::AvgPool2d {
                kernel,
                stride,
                padding,
            } => {
                let is_max = matches!(layer, Layer::MaxPool2d { .. });
                let (data, s) = ins[0];
                let k = *kernel;
                let mut out = vec![0i32; out_shape.elems() as usize];
                for oy in 0..out_shape.height {
                    for ox in 0..out_shape.width {
                        for c in 0..s.channels {
                            let mut m = i32::MIN;
                            let mut sum = 0i64;
                            for wy in 0..k {
                                let iy = (oy * stride + wy) as i64 - *padding as i64;
                                for wx in 0..k {
                                    let ix = (ox * stride + wx) as i64 - *padding as i64;
                                    let v = if iy >= 0
                                        && iy < s.height as i64
                                        && ix >= 0
                                        && ix < s.width as i64
                                    {
                                        data[s.index(iy as u32, ix as u32, c)]
                                    } else {
                                        0
                                    };
                                    m = m.max(v);
                                    sum += v as i64;
                                }
                            }
                            let v = if is_max {
                                m
                            } else {
                                clamp_i64(sum / (k as i64 * k as i64))
                            };
                            out[out_shape.index(oy, ox, c)] = v;
                        }
                    }
                }
                out
            }
            Layer::GlobalAvgPool => {
                let (data, s) = ins[0];
                let pixels = (s.height * s.width) as i64;
                (0..s.channels)
                    .map(|c| {
                        let mut sum = 0i64;
                        for y in 0..s.height {
                            for x in 0..s.width {
                                sum += data[s.index(y, x, c)] as i64;
                            }
                        }
                        clamp_i64(sum / pixels)
                    })
                    .collect()
            }
            Layer::Add { activation } => {
                let (a, _) = ins[0];
                let (b, _) = ins[1];
                a.iter()
                    .zip(b)
                    .map(|(&x, &y)| {
                        let v = x.saturating_add(y);
                        activation.map_or(v, |act| apply_activation(act, v))
                    })
                    .collect()
            }
            Layer::Concat => {
                let (h, w) = (out_shape.height, out_shape.width);
                let mut out = Vec::with_capacity(out_shape.elems() as usize);
                for y in 0..h {
                    for x in 0..w {
                        for (data, s) in ins {
                            let base = s.index(y, x, 0);
                            out.extend_from_slice(&data[base..base + s.channels as usize]);
                        }
                    }
                }
                out
            }
            Layer::Flatten => ins[0].0.to_vec(),
            Layer::Activation(act) => ins[0]
                .0
                .iter()
                .map(|&x| apply_activation(*act, x))
                .collect(),
        }
    }
}

/// Gathers a zero-padded convolution window in HWC im2col order.
#[allow(clippy::too_many_arguments)] // the arguments are the conv hyper-parameters
fn gather_window(
    data: &[i32],
    s: Shape,
    oy: u32,
    ox: u32,
    kernel: u32,
    stride: u32,
    padding: u32,
    out: &mut [i32],
) {
    let mut idx = 0;
    for ky in 0..kernel {
        let iy = (oy * stride + ky) as i64 - padding as i64;
        for kx in 0..kernel {
            let ix = (ox * stride + kx) as i64 - padding as i64;
            for c in 0..s.channels {
                out[idx] = if iy >= 0 && iy < s.height as i64 && ix >= 0 && ix < s.width as i64 {
                    data[s.index(iy as u32, ix as u32, c)]
                } else {
                    0
                };
                idx += 1;
            }
        }
    }
}

/// `out[j] = sat(Σ_i in[i] * w[i][j])` with row-major `w`.
fn mvm(input: &[i32], w: &[i8], cols: u32) -> Vec<i64> {
    let cols = cols as usize;
    let mut acc = vec![0i64; cols];
    for (i, &x) in input.iter().enumerate() {
        if x == 0 {
            continue;
        }
        let row = &w[i * cols..(i + 1) * cols];
        for (a, &wv) in acc.iter_mut().zip(row) {
            *a += x as i64 * wv as i64;
        }
    }
    acc
}

fn clamp_i64(v: i64) -> i32 {
    v.clamp(i32::MIN as i64, i32::MAX as i64) as i32
}

/// Shared epilogue for weight layers: saturate, add bias (saturating),
/// requantize (arithmetic shift), activate.
fn finish_weight_output(acc: i64, bias: i32, shift: u32, act: Option<Activation>) -> i32 {
    let v = clamp_i64(acc).saturating_add(bias) >> shift;
    act.map_or(v, |a| apply_activation(a, v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;
    use crate::zoo;

    #[test]
    fn fixed_point_activations() {
        assert_eq!(fixed_sigmoid(0), 128); // sigmoid(0) = 0.5 -> 128
        assert!(fixed_sigmoid(10_000) > 250);
        assert!(fixed_sigmoid(-10_000) < 6);
        assert_eq!(fixed_tanh(0), 0);
        assert!(fixed_tanh(10_000) > 250);
        assert!(fixed_tanh(-10_000) < -250);
        assert_eq!(apply_activation(Activation::Relu, -5), 0);
        assert_eq!(apply_activation(Activation::Relu, 5), 5);
    }

    #[test]
    fn mlp_runs_and_is_deterministic() {
        let net = zoo::tiny_mlp();
        let gen = WeightGen::for_network(&net);
        let golden = GoldenModel::new(&net, gen);
        let input = gen.input(net.input_shape.elems());
        let a = golden.run(&input).unwrap();
        let b = golden.run(&input).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
        assert!(a.iter().any(|&v| v != 0), "outputs should be non-trivial");
    }

    #[test]
    fn cnn_with_all_layer_kinds_runs() {
        let net = zoo::tiny_cnn();
        let gen = WeightGen::for_network(&net);
        let golden = GoldenModel::new(&net, gen);
        let input = gen.input(net.input_shape.elems());
        let outs = golden.run_all(&input).unwrap();
        assert_eq!(outs.len(), net.nodes.len());
    }

    #[test]
    fn wrong_input_length_rejected() {
        let net = zoo::tiny_mlp();
        let gen = WeightGen::for_network(&net);
        let golden = GoldenModel::new(&net, gen);
        assert!(golden.run(&[1, 2, 3]).is_err());
    }

    #[test]
    fn requant_shift_scales_outputs() {
        let net = zoo::tiny_mlp();
        let gen = WeightGen::for_network(&net);
        let input = gen.input(net.input_shape.elems());
        let small = GoldenModel::new(&net, gen)
            .with_requant_shift(8)
            .run(&input)
            .unwrap();
        let large = GoldenModel::new(&net, gen)
            .with_requant_shift(2)
            .run(&input)
            .unwrap();
        let sum_small: i64 = small.iter().map(|&v| (v as i64).abs()).sum();
        let sum_large: i64 = large.iter().map(|&v| (v as i64).abs()).sum();
        assert!(sum_large > sum_small);
    }

    #[test]
    fn avg_pool_truncates_toward_zero() {
        // A 2x2 single-channel map: avg of [1, 2, 2, 2] = 7/4 = 1 (trunc).
        let mut b = Network::builder("avg", crate::Shape::new(2, 2, 1));
        b.add(
            "p",
            Layer::AvgPool2d {
                kernel: 2,
                stride: 2,
                padding: 0,
            },
            vec![crate::PortRef::Input],
        );
        let net = b.finish().unwrap();
        let golden = GoldenModel::new(&net, WeightGen::new(0));
        assert_eq!(golden.run(&[1, 2, 2, 2]).unwrap(), vec![1]);
        assert_eq!(golden.run(&[-1, -2, -2, -2]).unwrap(), vec![-1]);
    }

    #[test]
    fn concat_interleaves_channels() {
        use crate::{PortRef, Shape};
        let mut b = Network::builder("cc", Shape::new(1, 2, 1));
        let a1 = b.add(
            "id1",
            Layer::Activation(Activation::Relu),
            vec![PortRef::Input],
        );
        let a2 = b.add(
            "id2",
            Layer::Activation(Activation::Relu),
            vec![PortRef::Input],
        );
        b.add("cat", Layer::Concat, vec![a1, a2]);
        let net = b.finish().unwrap();
        let golden = GoldenModel::new(&net, WeightGen::new(0));
        // Input pixels [10, 20] -> per-pixel channel concat: [10,10,20,20]
        assert_eq!(golden.run(&[10, 20]).unwrap(), vec![10, 10, 20, 20]);
    }

    #[test]
    fn residual_add_saturates() {
        use crate::{PortRef, Shape};
        let mut b = Network::builder("sat", Shape::new(1, 1, 1));
        let x = b.add(
            "id",
            Layer::Activation(Activation::Relu),
            vec![PortRef::Input],
        );
        b.add("sum", Layer::Add { activation: None }, vec![x, x]);
        let net = b.finish().unwrap();
        let golden = GoldenModel::new(&net, WeightGen::new(0));
        assert_eq!(golden.run(&[i32::MAX]).unwrap(), vec![i32::MAX]);
    }
}

//! Deterministic synthetic weights.
//!
//! Trained weight values do not influence the performance model (latency
//! and energy depend only on layer geometry), but the simulator's
//! *functional* mode needs concrete numbers so compiled programs can be
//! checked bit-exactly against the golden forward pass. `WeightGen`
//! produces the same int8 weights and int32 biases for a given
//! `(seed, node)` on every call, so the compiler and the golden model agree
//! without ever sharing state.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::network::{Network, NodeId};

/// Deterministic per-layer weight generator.
///
/// ```rust
/// use pimsim_nn::{NodeId, WeightGen};
/// let g = WeightGen::for_network_name("demo");
/// let a = g.matrix(NodeId(0), 4, 3);
/// let b = g.matrix(NodeId(0), 4, 3);
/// assert_eq!(a, b, "same (seed, node, shape) -> same weights");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WeightGen {
    seed: u64,
}

impl WeightGen {
    /// Creates a generator from an explicit seed.
    pub fn new(seed: u64) -> WeightGen {
        WeightGen { seed }
    }

    /// Seeds from a network name (stable FNV-1a hash).
    pub fn for_network_name(name: &str) -> WeightGen {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        WeightGen { seed: h }
    }

    /// Seeds from a network's name.
    pub fn for_network(net: &Network) -> WeightGen {
        WeightGen::for_network_name(&net.name)
    }

    fn rng(&self, node: NodeId, stream: u64) -> StdRng {
        StdRng::seed_from_u64(
            self.seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(node.0 as u64)
                .wrapping_add(stream << 32),
        )
    }

    /// The im2col weight matrix for a node: `rows × cols` int8 values in
    /// row-major order. Values are small (−8..=8) so shallow test networks
    /// stay far from i32 overflow.
    pub fn matrix(&self, node: NodeId, rows: u32, cols: u32) -> Vec<i8> {
        let mut rng = self.rng(node, 0);
        (0..rows as usize * cols as usize)
            .map(|_| rng.gen_range(-8i8..=8))
            .collect()
    }

    /// The bias vector for a node: `n` int32 values in −64..=64.
    pub fn bias(&self, node: NodeId, n: u32) -> Vec<i32> {
        let mut rng = self.rng(node, 1);
        (0..n as usize)
            .map(|_| rng.gen_range(-64i32..=64))
            .collect()
    }

    /// A deterministic input feature map for tests/benches: `n` int32
    /// activations in 0..=32 (post-ReLU-like range).
    pub fn input(&self, n: u32) -> Vec<i32> {
        let mut rng = self.rng(NodeId(u32::MAX), 2);
        (0..n as usize).map(|_| rng.gen_range(0i32..=32)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_calls() {
        let g = WeightGen::new(42);
        assert_eq!(g.matrix(NodeId(3), 8, 8), g.matrix(NodeId(3), 8, 8));
        assert_eq!(g.bias(NodeId(3), 8), g.bias(NodeId(3), 8));
        assert_eq!(g.input(16), g.input(16));
    }

    #[test]
    fn different_nodes_differ() {
        let g = WeightGen::new(42);
        assert_ne!(g.matrix(NodeId(0), 8, 8), g.matrix(NodeId(1), 8, 8));
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(
            WeightGen::new(1).matrix(NodeId(0), 8, 8),
            WeightGen::new(2).matrix(NodeId(0), 8, 8)
        );
    }

    #[test]
    fn name_seeding_is_stable() {
        let a = WeightGen::for_network_name("alexnet");
        let b = WeightGen::for_network_name("alexnet");
        let c = WeightGen::for_network_name("resnet18");
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn value_ranges() {
        let g = WeightGen::new(7);
        assert!(g
            .matrix(NodeId(0), 32, 32)
            .iter()
            .all(|&w| (-8..=8).contains(&w)));
        assert!(g
            .bias(NodeId(0), 100)
            .iter()
            .all(|&b| (-64..=64).contains(&b)));
        assert!(g.input(100).iter().all(|&x| (0..=32).contains(&x)));
    }

    #[test]
    fn weights_and_bias_are_independent_streams() {
        let g = WeightGen::new(9);
        let m = g.matrix(NodeId(0), 1, 4);
        let b = g.bias(NodeId(0), 4);
        // Not a strict requirement, but the streams should not be identical.
        assert_ne!(m.iter().map(|&v| v as i32).collect::<Vec<_>>(), b);
    }
}

//! The network DAG and its builder.

use std::collections::BTreeSet;
use std::error::Error;
use std::fmt;
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::layer::Layer;
use crate::shape::Shape;

/// Errors produced by network construction, validation or I/O.
#[derive(Debug)]
pub enum NnError {
    /// Shape inference failed.
    Shape(String),
    /// The graph is malformed (dangling reference, cycle, bad arity...).
    Graph(String),
    /// The network description file could not be parsed.
    Parse(String),
    /// File I/O failed.
    Io(std::io::Error),
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::Shape(m) => write!(f, "shape error: {m}"),
            NnError::Graph(m) => write!(f, "graph error: {m}"),
            NnError::Parse(m) => write!(f, "network parse error: {m}"),
            NnError::Io(e) => write!(f, "network i/o error: {e}"),
        }
    }
}

impl Error for NnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NnError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NnError {
    fn from(e: std::io::Error) -> Self {
        NnError::Io(e)
    }
}

/// Identifies a node (layer instance) within a [`Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node index as a usize.
    pub fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Where a node's input comes from: the network input or another node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PortRef {
    /// The network's input feature map.
    Input,
    /// The output of another node.
    Node(NodeId),
}

impl fmt::Display for PortRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PortRef::Input => write!(f, "input"),
            PortRef::Node(id) => write!(f, "{id}"),
        }
    }
}

/// One layer instance in the graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Stable identifier (equals the node's index).
    pub id: NodeId,
    /// Human-readable name (e.g. `conv1`, `fire2/expand3x3`).
    pub name: String,
    /// The operator.
    pub layer: Layer,
    /// Producers of this node's inputs, in order.
    pub inputs: Vec<PortRef>,
}

/// A DAG of layers with a single input feature map. Nodes are stored in
/// topological order (enforced by construction: a node may only reference
/// earlier nodes).
///
/// The on-disk representation is JSON (this reproduction's stand-in for the
/// paper's ONNX input; see DESIGN.md).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Network {
    /// Network name (used to seed synthetic weights).
    pub name: String,
    /// Input feature-map shape.
    pub input_shape: Shape,
    /// Layers in topological order.
    pub nodes: Vec<Node>,
}

impl Network {
    /// Starts building a network.
    pub fn builder(name: impl Into<String>, input_shape: Shape) -> NetworkBuilder {
        NetworkBuilder {
            net: Network {
                name: name.into(),
                input_shape,
                nodes: Vec::new(),
            },
        }
    }

    /// The node table entry for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.as_usize()]
    }

    /// Nodes whose output nobody consumes (the network outputs).
    pub fn output_nodes(&self) -> Vec<NodeId> {
        let mut consumed = BTreeSet::new();
        for n in &self.nodes {
            for i in &n.inputs {
                if let PortRef::Node(id) = i {
                    consumed.insert(*id);
                }
            }
        }
        self.nodes
            .iter()
            .map(|n| n.id)
            .filter(|id| !consumed.contains(id))
            .collect()
    }

    /// Validates graph structure and shape-checks every node.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Graph`] or [`NnError::Shape`] describing the first
    /// problem.
    pub fn validate(&self) -> Result<(), NnError> {
        if self.input_shape.elems() == 0 {
            return Err(NnError::Shape("input shape has zero elements".into()));
        }
        for (i, n) in self.nodes.iter().enumerate() {
            if n.id.as_usize() != i {
                return Err(NnError::Graph(format!(
                    "node {} has id {}, expected {}",
                    n.name, n.id, i
                )));
            }
            if !n.layer.arity().accepts(n.inputs.len()) {
                return Err(NnError::Graph(format!(
                    "node {} ({}) has {} inputs",
                    n.name,
                    n.layer.kind_name(),
                    n.inputs.len()
                )));
            }
            for p in &n.inputs {
                if let PortRef::Node(id) = p {
                    if id.as_usize() >= i {
                        return Err(NnError::Graph(format!(
                            "node {} references {} which is not earlier in topological order",
                            n.name, id
                        )));
                    }
                }
            }
        }
        let outs = self.output_nodes();
        if self.nodes.is_empty() {
            return Err(NnError::Graph("network has no layers".into()));
        }
        if outs.len() != 1 {
            return Err(NnError::Graph(format!(
                "network must have exactly one output node, found {}",
                outs.len()
            )));
        }
        self.inferred_shapes().map(|_| ())
    }

    /// The single output node.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Graph`] if the network does not have exactly one.
    pub fn output_node(&self) -> Result<NodeId, NnError> {
        let outs = self.output_nodes();
        match outs.as_slice() {
            [one] => Ok(*one),
            _ => Err(NnError::Graph(format!(
                "network must have exactly one output node, found {}",
                outs.len()
            ))),
        }
    }

    /// Runs shape inference, returning the output shape of every node in
    /// order.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Shape`] on the first incompatibility.
    pub fn inferred_shapes(&self) -> Result<Vec<Shape>, NnError> {
        let mut shapes: Vec<Shape> = Vec::with_capacity(self.nodes.len());
        for n in &self.nodes {
            let input_shapes: Vec<Shape> = n
                .inputs
                .iter()
                .map(|p| match p {
                    PortRef::Input => self.input_shape,
                    PortRef::Node(id) => shapes[id.as_usize()],
                })
                .collect();
            let out = n
                .layer
                .infer_shape(&input_shapes)
                .map_err(|e| NnError::Shape(format!("node {}: {e}", n.name)))?;
            shapes.push(out);
        }
        Ok(shapes)
    }

    /// Total multiply-accumulate operations for one inference.
    pub fn total_macs(&self) -> u64 {
        let Ok(shapes) = self.inferred_shapes() else {
            return 0;
        };
        self.nodes
            .iter()
            .map(|n| {
                let ins: Vec<Shape> = n
                    .inputs
                    .iter()
                    .map(|p| match p {
                        PortRef::Input => self.input_shape,
                        PortRef::Node(id) => shapes[id.as_usize()],
                    })
                    .collect();
                n.layer.macs(&ins)
            })
            .sum()
    }

    /// Count of weight-bearing (MVM) layers.
    pub fn weight_layer_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.layer.has_weights()).count()
    }

    /// Serializes to pretty JSON (the on-disk network description format).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("network serialization cannot fail")
    }

    /// Parses a network description from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Parse`] on malformed JSON.
    pub fn from_json(text: &str) -> Result<Network, NnError> {
        serde_json::from_str(text).map_err(|e| NnError::Parse(e.to_string()))
    }

    /// Loads a network description file.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Io`] / [`NnError::Parse`].
    pub fn from_file(path: impl AsRef<Path>) -> Result<Network, NnError> {
        Network::from_json(&std::fs::read_to_string(path)?)
    }

    /// Writes the network description to a file.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Io`] if the file cannot be written.
    pub fn to_file(&self, path: impl AsRef<Path>) -> Result<(), NnError> {
        Ok(std::fs::write(path, self.to_json())?)
    }
}

/// Incremental [`Network`] constructor. Each `add` returns the new node's
/// [`PortRef`] so graphs read like dataflow:
///
/// ```rust
/// use pimsim_nn::{Activation, Layer, Network, PortRef, Shape};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = Network::builder("demo", Shape::new(8, 8, 3));
/// let conv = b.add("conv1", Layer::Conv2d {
///     out_channels: 16, kernel: 3, stride: 1, padding: 1,
///     activation: Some(Activation::Relu),
/// }, vec![PortRef::Input]);
/// let pool = b.add("pool1", Layer::MaxPool2d { kernel: 2, stride: 2, padding: 0 }, vec![conv]);
/// let flat = b.add("flatten", Layer::Flatten, vec![pool]);
/// b.add("fc", Layer::Linear { out_features: 10, activation: None }, vec![flat]);
/// let net = b.finish()?;
/// assert_eq!(net.nodes.len(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct NetworkBuilder {
    net: Network,
}

impl NetworkBuilder {
    /// Appends a layer consuming `inputs`; returns a reference to its
    /// output for wiring into later layers.
    pub fn add(&mut self, name: impl Into<String>, layer: Layer, inputs: Vec<PortRef>) -> PortRef {
        let id = NodeId(self.net.nodes.len() as u32);
        self.net.nodes.push(Node {
            id,
            name: name.into(),
            layer,
            inputs,
        });
        PortRef::Node(id)
    }

    /// Validates and returns the finished network.
    ///
    /// # Errors
    ///
    /// Propagates [`Network::validate`] errors.
    pub fn finish(self) -> Result<Network, NnError> {
        self.net.validate()?;
        Ok(self.net)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Activation;

    fn tiny() -> Network {
        let mut b = Network::builder("t", Shape::new(4, 4, 2));
        let c = b.add(
            "conv",
            Layer::Conv2d {
                out_channels: 4,
                kernel: 3,
                stride: 1,
                padding: 1,
                activation: Some(Activation::Relu),
            },
            vec![PortRef::Input],
        );
        let f = b.add("flat", Layer::Flatten, vec![c]);
        b.add(
            "fc",
            Layer::Linear {
                out_features: 3,
                activation: None,
            },
            vec![f],
        );
        b.finish().unwrap()
    }

    #[test]
    fn builder_produces_valid_network() {
        let net = tiny();
        assert_eq!(net.nodes.len(), 3);
        assert_eq!(net.output_node().unwrap(), NodeId(2));
        let shapes = net.inferred_shapes().unwrap();
        assert_eq!(shapes[0], Shape::new(4, 4, 4));
        assert_eq!(shapes[2], Shape::flat(3));
    }

    #[test]
    fn forward_reference_rejected() {
        let mut net = tiny();
        net.nodes[0].inputs = vec![PortRef::Node(NodeId(2))];
        assert!(matches!(net.validate(), Err(NnError::Graph(_))));
    }

    #[test]
    fn multiple_outputs_rejected() {
        let mut b = Network::builder("two-heads", Shape::new(4, 4, 2));
        b.add("a", Layer::Flatten, vec![PortRef::Input]);
        b.add("b", Layer::Flatten, vec![PortRef::Input]);
        assert!(b.finish().is_err());
    }

    #[test]
    fn empty_network_rejected() {
        let b = Network::builder("empty", Shape::new(4, 4, 2));
        assert!(b.finish().is_err());
    }

    #[test]
    fn bad_arity_rejected() {
        let mut b = Network::builder("bad-add", Shape::new(4, 4, 2));
        let f = b.add("f", Layer::Flatten, vec![PortRef::Input]);
        b.add("sum", Layer::Add { activation: None }, vec![f]);
        assert!(matches!(b.finish(), Err(NnError::Graph(_))));
    }

    #[test]
    fn macs_and_weight_layers() {
        let net = tiny();
        assert_eq!(net.weight_layer_count(), 2);
        // conv: 16 px * 4 ch * 3*3*2 + fc: 64 * 3
        assert_eq!(net.total_macs(), 16 * 4 * 18 + 64 * 3);
    }

    #[test]
    fn json_roundtrip() {
        let net = tiny();
        let text = net.to_json();
        let back = Network::from_json(&text).unwrap();
        assert_eq!(back, net);
        assert!(Network::from_json("]").is_err());
    }

    #[test]
    fn residual_diamond_validates() {
        let mut b = Network::builder("res", Shape::new(8, 8, 16));
        let c1 = b.add(
            "c1",
            Layer::Conv2d {
                out_channels: 16,
                kernel: 3,
                stride: 1,
                padding: 1,
                activation: Some(Activation::Relu),
            },
            vec![PortRef::Input],
        );
        let c2 = b.add(
            "c2",
            Layer::Conv2d {
                out_channels: 16,
                kernel: 3,
                stride: 1,
                padding: 1,
                activation: None,
            },
            vec![c1],
        );
        let add = b.add(
            "add",
            Layer::Add {
                activation: Some(Activation::Relu),
            },
            vec![PortRef::Input, c2],
        );
        let f = b.add("flat", Layer::Flatten, vec![add]);
        b.add(
            "fc",
            Layer::Linear {
                out_features: 10,
                activation: None,
            },
            vec![f],
        );
        let net = b.finish().unwrap();
        assert_eq!(net.output_nodes().len(), 1);
    }
}

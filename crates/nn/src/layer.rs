//! Layer (operator) definitions.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::network::NnError;
use crate::shape::Shape;

/// Activation functions. On the accelerator these are vector-unit LUT ops
/// fused onto the producing layer's outputs (operator fusion, paper Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Activation {
    /// Rectified linear unit.
    Relu,
    /// Fixed-point sigmoid lookup.
    Sigmoid,
    /// Fixed-point tanh lookup.
    Tanh,
}

impl fmt::Display for Activation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Activation::Relu => "relu",
            Activation::Sigmoid => "sigmoid",
            Activation::Tanh => "tanh",
        };
        f.write_str(s)
    }
}

/// One network layer (operator).
///
/// Convolution and linear layers carry an optional fused activation; the
/// compiler keeps the fusion (the paper's PE criticism of MNSIM2.0 is
/// exactly that it *cannot* run pooling/activation on MVM outputs directly).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Layer {
    /// 2-D convolution over an HWC feature map.
    Conv2d {
        /// Output channels.
        out_channels: u32,
        /// Kernel size (square).
        kernel: u32,
        /// Stride.
        stride: u32,
        /// Zero padding on each border.
        padding: u32,
        /// Fused activation.
        activation: Option<Activation>,
    },
    /// Fully connected layer over a flat vector.
    Linear {
        /// Output features.
        out_features: u32,
        /// Fused activation.
        activation: Option<Activation>,
    },
    /// Max pooling. Padding contributes zeros (harmless after ReLU,
    /// where activations are non-negative).
    MaxPool2d {
        /// Window size (square).
        kernel: u32,
        /// Stride.
        stride: u32,
        /// Zero padding on each border.
        padding: u32,
    },
    /// Average pooling. The divisor is always `kernel * kernel`
    /// (padding included), matching the simulator's `VPOOL.AVG`.
    AvgPool2d {
        /// Window size (square).
        kernel: u32,
        /// Stride.
        stride: u32,
        /// Zero padding on each border.
        padding: u32,
    },
    /// Global average pooling to 1 × 1 × C.
    GlobalAvgPool,
    /// Element-wise residual addition of exactly two inputs.
    Add {
        /// Fused activation applied to the sum.
        activation: Option<Activation>,
    },
    /// Channel concatenation of two or more inputs (same H × W).
    Concat,
    /// Reinterpret an H × W × C map as a flat 1 × 1 × (H·W·C) vector.
    Flatten,
    /// Standalone activation.
    Activation(Activation),
}

impl Layer {
    /// Short kind name for reports.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Layer::Conv2d { .. } => "conv",
            Layer::Linear { .. } => "linear",
            Layer::MaxPool2d { .. } => "maxpool",
            Layer::AvgPool2d { .. } => "avgpool",
            Layer::GlobalAvgPool => "gavgpool",
            Layer::Add { .. } => "add",
            Layer::Concat => "concat",
            Layer::Flatten => "flatten",
            Layer::Activation(_) => "act",
        }
    }

    /// `true` for layers whose weights live in crossbars (MVM layers).
    pub fn has_weights(&self) -> bool {
        matches!(self, Layer::Conv2d { .. } | Layer::Linear { .. })
    }

    /// Number of inputs this layer consumes.
    pub fn arity(&self) -> LayerArity {
        match self {
            Layer::Add { .. } => LayerArity::Exactly(2),
            Layer::Concat => LayerArity::AtLeast(2),
            _ => LayerArity::Exactly(1),
        }
    }

    /// Infers the output shape from input shapes.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Shape`] if the inputs are incompatible with this
    /// layer (wrong arity, mismatched dimensions, kernel larger than the
    /// padded input...).
    pub fn infer_shape(&self, inputs: &[Shape]) -> Result<Shape, NnError> {
        let shape_err = |msg: String| Err(NnError::Shape(msg));
        let one = || -> Result<Shape, NnError> {
            if inputs.len() == 1 {
                Ok(inputs[0])
            } else {
                Err(NnError::Shape(format!(
                    "{} expects exactly one input, got {}",
                    self.kind_name(),
                    inputs.len()
                )))
            }
        };
        match self {
            Layer::Conv2d {
                out_channels,
                kernel,
                stride,
                padding,
                ..
            } => {
                let s = one()?;
                conv_output(s, *kernel, *stride, *padding)
                    .map(|(h, w)| Shape::new(h, w, *out_channels))
            }
            Layer::MaxPool2d {
                kernel,
                stride,
                padding,
            }
            | Layer::AvgPool2d {
                kernel,
                stride,
                padding,
            } => {
                let s = one()?;
                conv_output(s, *kernel, *stride, *padding)
                    .map(|(h, w)| Shape::new(h, w, s.channels))
            }
            Layer::GlobalAvgPool => {
                let s = one()?;
                Ok(Shape::flat(s.channels))
            }
            Layer::Linear { out_features, .. } => {
                let s = one()?;
                if !s.is_flat() {
                    return shape_err(format!(
                        "linear layer needs a flat input, got {s} (insert a flatten)"
                    ));
                }
                Ok(Shape::flat(*out_features))
            }
            Layer::Add { .. } => {
                if inputs.len() != 2 {
                    return shape_err(format!("add expects 2 inputs, got {}", inputs.len()));
                }
                if inputs[0] != inputs[1] {
                    return shape_err(format!(
                        "add inputs must match: {} vs {}",
                        inputs[0], inputs[1]
                    ));
                }
                Ok(inputs[0])
            }
            Layer::Concat => {
                if inputs.len() < 2 {
                    return shape_err(format!("concat expects >=2 inputs, got {}", inputs.len()));
                }
                let (h, w) = (inputs[0].height, inputs[0].width);
                let mut channels = 0;
                for s in inputs {
                    if s.height != h || s.width != w {
                        return shape_err(format!(
                            "concat inputs must share HxW: {}x{} vs {}x{}",
                            h, w, s.height, s.width
                        ));
                    }
                    channels += s.channels;
                }
                Ok(Shape::new(h, w, channels))
            }
            Layer::Flatten => {
                let s = one()?;
                Ok(Shape::flat(s.elems()))
            }
            Layer::Activation(_) => one(),
        }
    }

    /// Multiply-accumulate count for one inference pass, given the input
    /// shapes (0 for weightless layers). Used in reports.
    pub fn macs(&self, inputs: &[Shape]) -> u64 {
        match (self, inputs.first()) {
            (
                Layer::Conv2d {
                    out_channels,
                    kernel,
                    stride,
                    padding,
                    ..
                },
                Some(s),
            ) => match conv_output(*s, *kernel, *stride, *padding) {
                Ok((h, w)) => {
                    h as u64
                        * w as u64
                        * *out_channels as u64
                        * (*kernel as u64 * *kernel as u64 * s.channels as u64)
                }
                Err(_) => 0,
            },
            (Layer::Linear { out_features, .. }, Some(s)) => {
                s.elems() as u64 * *out_features as u64
            }
            _ => 0,
        }
    }
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Layer::Conv2d {
                out_channels,
                kernel,
                stride,
                padding,
                activation,
            } => {
                write!(
                    f,
                    "conv{kernel}x{kernel}/{stride} p{padding} -> {out_channels}"
                )?;
                if let Some(a) = activation {
                    write!(f, " +{a}")?;
                }
                Ok(())
            }
            Layer::Linear {
                out_features,
                activation,
            } => {
                write!(f, "linear -> {out_features}")?;
                if let Some(a) = activation {
                    write!(f, " +{a}")?;
                }
                Ok(())
            }
            Layer::MaxPool2d {
                kernel,
                stride,
                padding,
            } => {
                write!(f, "maxpool{kernel}x{kernel}/{stride} p{padding}")
            }
            Layer::AvgPool2d {
                kernel,
                stride,
                padding,
            } => {
                write!(f, "avgpool{kernel}x{kernel}/{stride} p{padding}")
            }
            Layer::GlobalAvgPool => write!(f, "global-avgpool"),
            Layer::Add { activation } => {
                write!(f, "add")?;
                if let Some(a) = activation {
                    write!(f, " +{a}")?;
                }
                Ok(())
            }
            Layer::Concat => write!(f, "concat"),
            Layer::Flatten => write!(f, "flatten"),
            Layer::Activation(a) => write!(f, "{a}"),
        }
    }
}

/// Input arity of a layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayerArity {
    /// Exactly `n` inputs.
    Exactly(usize),
    /// `n` or more inputs.
    AtLeast(usize),
}

impl LayerArity {
    /// Whether `count` inputs satisfy this arity.
    pub fn accepts(self, count: usize) -> bool {
        match self {
            LayerArity::Exactly(n) => count == n,
            LayerArity::AtLeast(n) => count >= n,
        }
    }
}

/// Spatial output size of a convolution/pool window.
fn conv_output(s: Shape, kernel: u32, stride: u32, padding: u32) -> Result<(u32, u32), NnError> {
    if kernel == 0 || stride == 0 {
        return Err(NnError::Shape("kernel and stride must be positive".into()));
    }
    let padded_h = s.height + 2 * padding;
    let padded_w = s.width + 2 * padding;
    if padded_h < kernel || padded_w < kernel {
        return Err(NnError::Shape(format!(
            "window {kernel} larger than padded input {padded_h}x{padded_w}"
        )));
    }
    Ok((
        (padded_h - kernel) / stride + 1,
        (padded_w - kernel) / stride + 1,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_shape_inference() {
        let layer = Layer::Conv2d {
            out_channels: 64,
            kernel: 3,
            stride: 1,
            padding: 1,
            activation: Some(Activation::Relu),
        };
        let out = layer.infer_shape(&[Shape::new(32, 32, 3)]).unwrap();
        assert_eq!(out, Shape::new(32, 32, 64));

        let strided = Layer::Conv2d {
            out_channels: 96,
            kernel: 11,
            stride: 4,
            padding: 2,
            activation: None,
        };
        let out = strided.infer_shape(&[Shape::new(224, 224, 3)]).unwrap();
        assert_eq!(out, Shape::new(55, 55, 96));
    }

    #[test]
    fn pool_and_global_pool() {
        let pool = Layer::MaxPool2d {
            kernel: 2,
            stride: 2,
            padding: 0,
        };
        assert_eq!(
            pool.infer_shape(&[Shape::new(32, 32, 64)]).unwrap(),
            Shape::new(16, 16, 64)
        );
        assert_eq!(
            Layer::GlobalAvgPool
                .infer_shape(&[Shape::new(7, 7, 512)])
                .unwrap(),
            Shape::flat(512)
        );
    }

    #[test]
    fn linear_needs_flat_input() {
        let lin = Layer::Linear {
            out_features: 10,
            activation: None,
        };
        assert!(lin.infer_shape(&[Shape::new(2, 2, 4)]).is_err());
        assert_eq!(
            lin.infer_shape(&[Shape::flat(16)]).unwrap(),
            Shape::flat(10)
        );
    }

    #[test]
    fn add_requires_matching_pair() {
        let add = Layer::Add { activation: None };
        let s = Shape::new(8, 8, 32);
        assert_eq!(add.infer_shape(&[s, s]).unwrap(), s);
        assert!(add.infer_shape(&[s]).is_err());
        assert!(add.infer_shape(&[s, Shape::new(8, 8, 16)]).is_err());
    }

    #[test]
    fn concat_sums_channels() {
        let c = Layer::Concat;
        let out = c
            .infer_shape(&[
                Shape::new(8, 8, 16),
                Shape::new(8, 8, 32),
                Shape::new(8, 8, 64),
            ])
            .unwrap();
        assert_eq!(out, Shape::new(8, 8, 112));
        assert!(c
            .infer_shape(&[Shape::new(8, 8, 16), Shape::new(4, 4, 16)])
            .is_err());
        assert!(c.infer_shape(&[Shape::new(8, 8, 16)]).is_err());
    }

    #[test]
    fn flatten_preserves_elems() {
        let out = Layer::Flatten.infer_shape(&[Shape::new(7, 7, 64)]).unwrap();
        assert_eq!(out, Shape::flat(7 * 7 * 64));
    }

    #[test]
    fn window_too_large_rejected() {
        let pool = Layer::MaxPool2d {
            kernel: 9,
            stride: 1,
            padding: 0,
        };
        assert!(pool.infer_shape(&[Shape::new(8, 8, 4)]).is_err());
    }

    #[test]
    fn macs_counted_for_weight_layers() {
        let conv = Layer::Conv2d {
            out_channels: 8,
            kernel: 3,
            stride: 1,
            padding: 1,
            activation: None,
        };
        let input = Shape::new(4, 4, 2);
        // 4*4 output pixels * 8 out channels * 3*3*2 window
        assert_eq!(conv.macs(&[input]), 16 * 8 * 18);
        assert_eq!(Layer::Flatten.macs(&[input]), 0);
        assert!(conv.has_weights());
        assert!(!Layer::Concat.has_weights());
    }

    #[test]
    fn arity_rules() {
        assert!(Layer::Concat.arity().accepts(3));
        assert!(!Layer::Concat.arity().accepts(1));
        assert!(Layer::Add { activation: None }.arity().accepts(2));
        assert!(!Layer::Add { activation: None }.arity().accepts(3));
        assert!(Layer::Flatten.arity().accepts(1));
    }
}

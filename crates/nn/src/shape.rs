//! Feature-map shapes.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The shape of one feature map in HWC (height × width × channels) layout
/// with an implicit batch of 1.
///
/// HWC is the layout the compiler exploits: a convolution window row is
/// `kernel_w × channels` *contiguous* elements, so im2col assembly becomes a
/// handful of strided copies.
///
/// ```rust
/// use pimsim_nn::Shape;
/// let s = Shape::new(8, 8, 16);
/// assert_eq!(s.elems(), 1024);
/// assert_eq!(s.index(1, 2, 3), 1 * 8 * 16 + 2 * 16 + 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape {
    /// Height in pixels.
    pub height: u32,
    /// Width in pixels.
    pub width: u32,
    /// Channels per pixel.
    pub channels: u32,
}

impl Shape {
    /// Creates a shape.
    pub fn new(height: u32, width: u32, channels: u32) -> Shape {
        Shape {
            height,
            width,
            channels,
        }
    }

    /// A flat vector of `n` features (1 × 1 × n).
    pub fn flat(n: u32) -> Shape {
        Shape::new(1, 1, n)
    }

    /// Total element count.
    pub fn elems(&self) -> u32 {
        self.height * self.width * self.channels
    }

    /// `true` if this is a 1 × 1 × C vector.
    pub fn is_flat(&self) -> bool {
        self.height == 1 && self.width == 1
    }

    /// Linear element index of `(y, x, c)` in HWC order.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the coordinates are out of range.
    pub fn index(&self, y: u32, x: u32, c: u32) -> usize {
        debug_assert!(y < self.height && x < self.width && c < self.channels);
        ((y * self.width + x) * self.channels + c) as usize
    }

    /// Elements in one pixel row (`width × channels`) — the vertical stride.
    pub fn row_elems(&self) -> u32 {
        self.width * self.channels
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}", self.height, self.width, self.channels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elems_and_index() {
        let s = Shape::new(4, 5, 3);
        assert_eq!(s.elems(), 60);
        assert_eq!(s.index(0, 0, 0), 0);
        assert_eq!(s.index(3, 4, 2), 59);
        assert_eq!(s.row_elems(), 15);
    }

    #[test]
    fn flat_shapes() {
        let s = Shape::flat(100);
        assert!(s.is_flat());
        assert_eq!(s.elems(), 100);
        assert!(!Shape::new(2, 1, 4).is_flat());
    }

    #[test]
    fn display() {
        assert_eq!(Shape::new(32, 32, 3).to_string(), "32x32x3");
    }
}

#![warn(missing_docs)]

//! Network descriptions, shape inference, the model zoo and the golden
//! functional model.
//!
//! The paper's compiler consumes an ONNX network description. This crate is
//! the reproduction's stand-in (see DESIGN.md): a layer-graph IR with the
//! operators the evaluation networks need (convolution, linear, pooling,
//! residual `add`, channel `concat`, activations), shape inference, a JSON
//! on-disk format, deterministic synthetic int8 weights, and a **reference
//! forward pass** ([`GoldenModel`]) whose integer semantics exactly match the
//! simulator's functional mode — compiled programs are checked bit-exactly
//! against it in the integration tests.
//!
//! The [`zoo`] module builds the paper's evaluation networks: `alexnet`,
//! `googlenet`, `resnet18`, `squeezenet` (Fig. 3/4) and `vgg8`, `vgg16`,
//! `resnet18` (Fig. 5, the MNSIM2.0 comparison set).
//!
//! # Example
//!
//! ```rust
//! use pimsim_nn::zoo;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let net = zoo::resnet18(32); // 32x32 input resolution
//! net.validate()?;
//! let shapes = net.inferred_shapes()?;
//! // The final classifier emits 1000 logits.
//! assert_eq!(shapes.last().unwrap().channels, 1000);
//! # Ok(())
//! # }
//! ```

mod golden;
mod layer;
mod network;
mod shape;
mod weights;
pub mod zoo;

pub use golden::{apply_activation, fixed_sigmoid, fixed_tanh, GoldenModel, DEFAULT_REQUANT_SHIFT};
pub use layer::{Activation, Layer};
pub use network::{Network, NetworkBuilder, NnError, Node, NodeId, PortRef};
pub use shape::Shape;
pub use weights::WeightGen;

/// Result alias for fallible network operations.
pub type Result<T> = std::result::Result<T, NnError>;

#![warn(missing_docs)]

//! An MNSIM2.0-like **behaviour-level** simulator (the paper's Fig. 5
//! comparator).
//!
//! MNSIM2.0 is a dataflow-based, behaviour-level modelling tool: it
//! computes per-layer latencies analytically from device parameters and
//! assumes **fully asynchronous, idealistic communication** — "every data
//! will be immediately transmitted to the next component once the data is
//! computed" (paper §IV-B). That assumption hides synchronization cost and
//! buffer pressure entirely; the paper's analysis shows it under-reports
//! the communication share of latency (18% vs 77% on the second
//! convolution of resnet-18).
//!
//! This crate re-implements that modelling style over the **same**
//! [`pimsim_arch::model::CostModel`] the cycle-accurate simulator uses, so
//! the two differ only in scheduling/communication assumptions — exactly
//! the property the paper's comparison isolates:
//!
//! * Each weight layer owns enough crossbars for all of its tiles and all
//!   tiles fire in parallel: per output pixel, one crossbar read phase set
//!   plus ADC serialization of the widest tile (no structure hazards, no
//!   ROB, no instruction overheads).
//! * Vector work (pooling, activations, residual adds) runs on dedicated
//!   units, layer by layer.
//! * Inter-layer traffic is tallied for energy and for the per-layer
//!   communication ratio, but contributes **zero** latency (immediate
//!   asynchronous forwarding with unlimited buffering).
//! * Total latency is the sum of per-layer compute latencies.
//!
//! # Example
//!
//! ```rust
//! use pimsim_arch::ArchConfig;
//! use pimsim_baseline::BaselineSimulator;
//! use pimsim_nn::zoo;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let arch = ArchConfig::paper_default();
//! let report = BaselineSimulator::new(&arch).run(&zoo::vgg8(32))?;
//! assert!(report.latency.as_ns_f64() > 0.0);
//! // The idealistic model reports tiny communication ratios.
//! assert!(report.comm_ratio_of("conv2").unwrap() < 0.5);
//! # Ok(())
//! # }
//! ```

use pimsim_arch::model::CostModel;
use pimsim_arch::{ArchConfig, ArchError, Energy};
use pimsim_event::SimTime;
use pimsim_nn::{Layer, Network, NnError, PortRef, Shape};

/// Errors produced by the baseline simulator.
#[derive(Debug)]
pub enum BaselineError {
    /// The architecture configuration is invalid.
    Arch(ArchError),
    /// The network is malformed.
    Network(NnError),
}

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BaselineError::Arch(e) => write!(f, "invalid architecture: {e}"),
            BaselineError::Network(e) => write!(f, "invalid network: {e}"),
        }
    }
}

impl std::error::Error for BaselineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BaselineError::Arch(e) => Some(e),
            BaselineError::Network(e) => Some(e),
        }
    }
}

impl From<ArchError> for BaselineError {
    fn from(e: ArchError) -> Self {
        BaselineError::Arch(e)
    }
}

impl From<NnError> for BaselineError {
    fn from(e: NnError) -> Self {
        BaselineError::Network(e)
    }
}

/// Per-layer results of a baseline run.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineLayer {
    /// Layer name.
    pub name: String,
    /// Compute latency attributed to the layer (on the critical path).
    pub compute: SimTime,
    /// Communication time of the layer's input traffic — *overlapped*,
    /// i.e. not on the critical path, reported for the ratio analysis.
    pub comm: SimTime,
    /// Energy attributed to the layer.
    pub energy: Energy,
}

impl BaselineLayer {
    /// Communication share of this layer's wall time under the idealistic
    /// model (communication overlaps compute, so the denominator is the
    /// larger of the two plus nothing else).
    pub fn comm_ratio(&self) -> f64 {
        let total = self.compute + self.comm;
        if total.is_zero() {
            0.0
        } else {
            self.comm.as_ps() as f64 / total.as_ps() as f64
        }
    }
}

/// The result of a baseline run.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineReport {
    /// End-to-end latency (sum of per-layer compute; communication is
    /// free by assumption).
    pub latency: SimTime,
    /// Total energy including static.
    pub energy: Energy,
    /// Per-layer breakdown, in node order.
    pub per_layer: Vec<BaselineLayer>,
}

impl BaselineReport {
    /// Average power in watts.
    pub fn avg_power_w(&self) -> f64 {
        self.energy.power_over(self.latency)
    }

    /// The communication ratio of the layer whose name contains `needle`.
    pub fn comm_ratio_of(&self, needle: &str) -> Option<f64> {
        self.per_layer
            .iter()
            .find(|l| l.name.contains(needle))
            .map(BaselineLayer::comm_ratio)
    }
}

/// The behaviour-level simulator.
#[derive(Debug, Clone, Copy)]
pub struct BaselineSimulator<'a> {
    arch: &'a ArchConfig,
}

impl<'a> BaselineSimulator<'a> {
    /// Creates a baseline simulator over `arch`.
    pub fn new(arch: &'a ArchConfig) -> Self {
        BaselineSimulator { arch }
    }

    /// Runs the analytical model over `net`.
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError`] for invalid configurations or networks.
    pub fn run(&self, net: &Network) -> Result<BaselineReport, BaselineError> {
        self.arch.validate()?;
        net.validate()?;
        let shapes = net.inferred_shapes()?;
        let model = CostModel::new(self.arch);
        let r = &self.arch.resources;
        let lcpx = r.logical_cols_per_xbar().max(1);
        // Idealistic average distance for overlapped traffic accounting.
        let avg_hops = ((r.core_rows + r.core_cols) / 2).max(1) as u32;

        let mut per_layer = Vec::with_capacity(net.nodes.len());
        let mut latency = SimTime::ZERO;
        let mut energy = Energy::ZERO;

        for node in &net.nodes {
            let in_shapes: Vec<Shape> = node
                .inputs
                .iter()
                .map(|p| match p {
                    PortRef::Input => net.input_shape,
                    PortRef::Node(id) => shapes[id.as_usize()],
                })
                .collect();
            let out = shapes[node.id.as_usize()];
            let pixels = (out.height * out.width) as u64;

            let (compute, layer_energy) = match &node.layer {
                Layer::Conv2d {
                    out_channels,
                    kernel,
                    ..
                } => {
                    let rows = kernel * kernel * in_shapes[0].channels;
                    self.matrix_cost(&model, rows, *out_channels, lcpx, pixels)
                }
                Layer::Linear { out_features, .. } => {
                    let rows = in_shapes[0].elems();
                    self.matrix_cost(&model, rows, *out_features, lcpx, pixels)
                }
                Layer::MaxPool2d { kernel, .. } | Layer::AvgPool2d { kernel, .. } => {
                    let c = model.vector_cost(kernel * kernel * out.channels, 1, 1);
                    (c.time * pixels, c.energy * pixels as f64)
                }
                Layer::GlobalAvgPool => {
                    let s = in_shapes[0];
                    let c = model.vector_cost(s.elems(), 1, 1);
                    (c.time, c.energy)
                }
                Layer::Add { .. } => {
                    let c = model.vector_cost(out.elems(), 2, 1);
                    (c.time, c.energy)
                }
                Layer::Activation(_) => {
                    let c = model.vector_cost(out.elems(), 1, 1);
                    (c.time, c.energy)
                }
                // Pure data-layout operators: free under this model.
                Layer::Concat | Layer::Flatten => (SimTime::ZERO, Energy::ZERO),
            };

            // Input traffic: overlapped, energy + ratio bookkeeping only.
            let in_elems: u32 = in_shapes.iter().map(Shape::elems).sum();
            let comm_cost = model.noc_message_cost(in_elems, avg_hops);
            let flits = model.flits_for_elems(in_elems);
            let comm_energy = model.noc_energy(flits, avg_hops);

            latency += compute;
            energy += layer_energy + comm_energy;
            per_layer.push(BaselineLayer {
                name: node.name.clone(),
                compute,
                comm: comm_cost.time,
                energy: layer_energy + comm_energy,
            });
        }

        energy += model.static_energy(latency);
        Ok(BaselineReport {
            latency,
            energy,
            per_layer,
        })
    }

    /// Per-layer matrix compute under behaviour-level assumptions: all
    /// tiles in parallel, pixel-serial, ADC serialization bounded by the
    /// widest tile; full-layer MVM energy per pixel.
    fn matrix_cost(
        &self,
        model: &CostModel<'_>,
        rows: u32,
        cols: u32,
        lcpx: u32,
        pixels: u64,
    ) -> (SimTime, Energy) {
        let r = &self.arch.resources;
        let row_blocks = rows.div_ceil(r.xbar_rows);
        let xbars_per_block = cols.div_ceil(lcpx);
        // One group's timing bounds the pixel (all groups concurrent).
        let per_pixel = model.mvm_cost(r.xbar_rows.min(rows), cols, xbars_per_block);
        // Energy counts every group.
        let pixel_energy = per_pixel.energy * row_blocks as f64;
        (per_pixel.time * pixels, pixel_energy * pixels as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimsim_nn::zoo;

    #[test]
    fn runs_on_fig5_networks() {
        let arch = ArchConfig::paper_default();
        let sim = BaselineSimulator::new(&arch);
        for name in ["vgg8", "vgg16", "resnet18"] {
            let net = zoo::by_name(name, 32).unwrap();
            let rep = sim.run(&net).unwrap();
            assert!(rep.latency.as_ns_f64() > 0.0, "{name} has latency");
            assert!(rep.energy.as_pj() > 0.0, "{name} has energy");
            assert_eq!(rep.per_layer.len(), net.nodes.len());
        }
    }

    #[test]
    fn latency_is_sum_of_layer_compute() {
        let arch = ArchConfig::paper_default();
        let net = zoo::vgg8(32);
        let rep = BaselineSimulator::new(&arch).run(&net).unwrap();
        let total: SimTime = rep.per_layer.iter().map(|l| l.compute).sum();
        assert_eq!(rep.latency, total);
    }

    #[test]
    fn comm_is_off_critical_path_but_counted_in_ratio() {
        let arch = ArchConfig::paper_default();
        let net = zoo::resnet18(32);
        let rep = BaselineSimulator::new(&arch).run(&net).unwrap();
        // Communication must not be free in the *ratio* sense...
        assert!(rep.per_layer.iter().any(|l| l.comm.as_ps() > 0));
        // ...but ratios stay small under idealistic overlap.
        let conv_ratios: Vec<f64> = rep
            .per_layer
            .iter()
            .filter(|l| l.name.contains("conv"))
            .map(BaselineLayer::comm_ratio)
            .collect();
        assert!(!conv_ratios.is_empty());
        assert!(
            conv_ratios.iter().all(|&r| r < 0.5),
            "idealistic comm ratios should be small: {conv_ratios:?}"
        );
    }

    #[test]
    fn bigger_networks_take_longer() {
        let arch = ArchConfig::paper_default();
        let sim = BaselineSimulator::new(&arch);
        let small = sim.run(&zoo::vgg8(32)).unwrap().latency;
        let large = sim.run(&zoo::vgg16(32)).unwrap().latency;
        assert!(large > small);
    }

    #[test]
    fn adc_count_speeds_up_baseline_too() {
        let mut fast = ArchConfig::paper_default();
        fast.resources.adcs_per_xbar = 8;
        let slow = ArchConfig::paper_default();
        let net = zoo::vgg8(32);
        let t_slow = BaselineSimulator::new(&slow).run(&net).unwrap().latency;
        let t_fast = BaselineSimulator::new(&fast).run(&net).unwrap().latency;
        assert!(t_fast < t_slow);
    }

    #[test]
    fn report_helpers() {
        let arch = ArchConfig::paper_default();
        let rep = BaselineSimulator::new(&arch).run(&zoo::vgg8(32)).unwrap();
        assert!(rep.avg_power_w() > 0.0);
        assert!(rep.comm_ratio_of("conv2").is_some());
        assert!(rep.comm_ratio_of("nonexistent-layer").is_none());
    }

    #[test]
    fn invalid_inputs_error() {
        let mut arch = ArchConfig::paper_default();
        arch.resources.rob_size = 0;
        assert!(matches!(
            BaselineSimulator::new(&arch).run(&zoo::vgg8(32)),
            Err(BaselineError::Arch(_))
        ));
    }
}

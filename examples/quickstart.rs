//! Quickstart: the full PIMSIM-NN workflow on a small CNN.
//!
//! 1. Pick an architecture configuration (the paper's "architecture
//!    configuration file").
//! 2. Pick a network description.
//! 3. Compile it (mapping + scheduling + code generation).
//! 4. Run the cycle-accurate simulator and read latency/energy/power.
//! 5. Because this run is *functional*, also check the simulated output
//!    bit-exactly against the golden reference model.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use pimsim::nn::{zoo, GoldenModel, WeightGen};
use pimsim::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small test chip (3x3 cores, 16x16 crossbars) with functional
    // simulation enabled; `ArchConfig::paper_default()` is the paper's
    // 64-core evaluation chip.
    let arch = ArchConfig::small_test();
    let net = zoo::tiny_cnn();
    println!(
        "network `{}`: {} layers, {} MACs, input {}",
        net.name,
        net.nodes.len(),
        net.total_macs(),
        net.input_shape
    );

    // Compile under the paper's performance-first mapping.
    let compiled = Compiler::new(&arch)
        .mapping(MappingPolicy::PerformanceFirst)
        .compile(&net)?;
    println!(
        "compiled: {} instructions across {} cores",
        compiled.program.total_instructions(),
        compiled.placement.cores_used
    );

    // Simulate.
    let report = Simulator::new(&arch).run(&compiled.program)?;
    println!("latency : {}", report.latency);
    println!("energy  : {}", report.energy.total());
    println!("power   : {:.3} W", report.avg_power_w());
    println!(
        "instrs  : {} (matrix {}, vector {}, transfer {}, scalar {})",
        report.instructions,
        report.class_counts[0],
        report.class_counts[1],
        report.class_counts[2],
        report.class_counts[3]
    );

    // Functional check: simulated output == golden forward pass.
    let sim_out = report.read_global(compiled.output.gaddr, compiled.output.elems);
    let gen = WeightGen::for_network(&net);
    let golden = GoldenModel::new(&net, gen).run(&gen.input(net.input_shape.elems()))?;
    assert_eq!(sim_out, golden, "simulator must match the golden model");
    println!("output  : {sim_out:?} (bit-exact vs golden model)");
    Ok(())
}

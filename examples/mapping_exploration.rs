//! Software-mapping exploration (the paper's Fig. 3 experiment).
//!
//! Compares the two mapping algorithms of §III-A — utilization-first vs
//! performance-first — on the four evaluation networks, with the paper's
//! chip (64 cores, 512 crossbars/core, 128×128) and ROB size 1.
//!
//! ```sh
//! cargo run --release --example mapping_exploration
//! ```

use pimsim::nn::zoo;
use pimsim::prelude::*;

const NETWORKS: &[&str] = &["alexnet", "googlenet", "resnet18", "squeezenet"];
const RESOLUTION: u32 = 64;
const BATCH: u32 = 4;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let arch = ArchConfig::paper_default().with_rob(1);
    println!("chip: 64 cores, 512 xbars/core, 128x128, ROB=1, batch {BATCH}, inputs {RESOLUTION}x{RESOLUTION}");
    println!(
        "{:<11} {:>16} {:>16} {:>8}   {:>14} {:>14} {:>8}",
        "network", "util lat/img", "perf lat/img", "speedup", "util E/img", "perf E/img", "E ratio"
    );
    for name in NETWORKS {
        let net = zoo::by_name(name, RESOLUTION).expect("zoo network");
        let mut results = Vec::new();
        for policy in [
            MappingPolicy::UtilizationFirst,
            MappingPolicy::PerformanceFirst,
        ] {
            let compiled = Compiler::new(&arch)
                .mapping(policy)
                .batch(BATCH)
                .compile(&net)?;
            let report = Simulator::new(&arch).run(&compiled.program)?;
            results.push((
                report.latency / BATCH as u64,
                report.energy.total() / BATCH as f64,
            ));
        }
        let (ul, ue) = results[0];
        let (pl, pe) = results[1];
        println!(
            "{name:<11} {:>16} {:>16} {:>7.2}x   {:>14} {:>14} {:>7.2}x",
            format!("{ul}"),
            format!("{pl}"),
            ul.as_ns_f64() / pl.as_ns_f64(),
            format!("{ue}"),
            format!("{pe}"),
            ue.as_pj() / pe.as_pj(),
        );
    }
    println!("\npaper Fig. 3: performance-first wins on every network, ~2x on average");
    Ok(())
}

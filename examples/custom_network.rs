//! Building and simulating a custom network on a custom chip.
//!
//! Shows the public graph-builder API, a hand-tuned architecture
//! configuration, compilation under both mapping policies, and a
//! functional equivalence check between the two placements.
//!
//! ```sh
//! cargo run --release --example custom_network
//! ```

use pimsim::nn::{Activation, GoldenModel, Layer, Network, PortRef, Shape, WeightGen};
use pimsim::prelude::*;

fn build_network() -> Result<Network, Box<dyn std::error::Error>> {
    let mut b = Network::builder("custom_siamese", Shape::new(10, 10, 4));
    // Two parallel feature extractors over the same input...
    let left = b.add(
        "left/conv",
        Layer::Conv2d {
            out_channels: 8,
            kernel: 3,
            stride: 1,
            padding: 1,
            activation: Some(Activation::Relu),
        },
        vec![PortRef::Input],
    );
    let right = b.add(
        "right/conv",
        Layer::Conv2d {
            out_channels: 8,
            kernel: 5,
            stride: 1,
            padding: 2,
            activation: Some(Activation::Tanh),
        },
        vec![PortRef::Input],
    );
    // ...fused by channel concatenation, pooled, classified.
    let cat = b.add("fuse", Layer::Concat, vec![left, right]);
    let pool = b.add(
        "pool",
        Layer::MaxPool2d {
            kernel: 2,
            stride: 2,
            padding: 0,
        },
        vec![cat],
    );
    let flat = b.add("flatten", Layer::Flatten, vec![pool]);
    b.add(
        "head",
        Layer::Linear {
            out_features: 5,
            activation: None,
        },
        vec![flat],
    );
    Ok(b.finish()?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A custom chip: 2x3 mesh, 32x32 crossbars, wide vector unit.
    let mut arch = ArchConfig::small_test();
    arch.resources.core_rows = 2;
    arch.resources.core_cols = 3;
    arch.resources.xbar_rows = 32;
    arch.resources.xbar_cols = 32;
    arch.resources.xbars_per_core = 16;
    arch.resources.vector_lanes = 16;
    arch.validate()?;

    let net = build_network()?;
    println!("network `{}` on a {}x{} mesh", net.name, 2, 3);

    let gen = WeightGen::for_network(&net);
    let golden = GoldenModel::new(&net, gen).run(&gen.input(net.input_shape.elems()))?;

    for policy in [
        MappingPolicy::UtilizationFirst,
        MappingPolicy::PerformanceFirst,
    ] {
        let compiled = Compiler::new(&arch).mapping(policy).compile(&net)?;
        let report = Simulator::new(&arch).run(&compiled.program)?;
        let out = report.read_global(compiled.output.gaddr, compiled.output.elems);
        assert_eq!(out, golden, "placement must not change results");
        println!(
            "  {policy:<19} latency {:>10}  energy {:>12}  cores {}",
            format!("{}", report.latency),
            format!("{}", report.energy.total()),
            compiled.placement.cores_used
        );
    }
    println!("both mappings produce bit-identical outputs: {golden:?}");
    Ok(())
}

//! Hardware ROB-capacity exploration (the paper's Fig. 4 experiment).
//!
//! Declares the sweep as a `SweepGrid` — networks × ROB depths — and lets
//! the `pimsim-sweep` campaign engine fan it out across the host's cores,
//! then prints latency normalized to ROB=1 for each evaluation network.
//! The paper's observation: latency falls as the ROB grows, but the 12→16
//! step gains little because back-to-back `MVM`s on the same crossbars hit
//! the *structure hazard*.
//!
//! ```sh
//! cargo run --release --example rob_sweep
//! ```

use pimsim::prelude::*;

const NETWORKS: &[&str] = &["alexnet", "googlenet", "resnet18", "squeezenet"];
const ROBS: &[u32] = &[1, 4, 8, 12, 16];
const RESOLUTION: u32 = 64;
const BATCH: u32 = 4;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut grid = SweepGrid::over_networks(NETWORKS.iter().copied());
    grid.resolutions = vec![RESOLUTION];
    grid.batches = vec![BATCH];
    grid.rob_sizes = ROBS.to_vec();
    let threads = default_threads();
    let rows = run_grid(&grid, threads)?;

    println!("normalized latency vs ROB size (performance-first, batch {BATCH})");
    print!("{:<11}", "network");
    for rob in ROBS {
        print!(" {:>8}", format!("rob={rob}"));
    }
    println!();
    for name in NETWORKS {
        print!("{name:<11}");
        let mut base = None;
        for &rob in ROBS {
            let point = rows
                .iter()
                .find(|r| r.scenario.network == *name && r.scenario.arch.resources.rob_size == rob)
                .expect("grid covers every (network, rob) point");
            let lat = point.latency().as_ns_f64();
            let b = *base.get_or_insert(lat);
            print!(" {:>8.3}", lat / b);
        }
        println!();
    }
    println!("\npaper Fig. 4: monotone decrease with a small 12->16 step (structure hazard)");
    Ok(())
}

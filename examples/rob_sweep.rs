//! Hardware ROB-capacity exploration (the paper's Fig. 4 experiment).
//!
//! Sweeps the re-order buffer size over {1, 4, 8, 12, 16} and prints
//! latency normalized to ROB=1 for each evaluation network. The paper's
//! observation: latency falls as the ROB grows, but the 12→16 step gains
//! little because back-to-back `MVM`s on the same crossbars hit the
//! *structure hazard*.
//!
//! ```sh
//! cargo run --release --example rob_sweep
//! ```

use pimsim::nn::zoo;
use pimsim::prelude::*;

const NETWORKS: &[&str] = &["alexnet", "googlenet", "resnet18", "squeezenet"];
const ROBS: &[u32] = &[1, 4, 8, 12, 16];
const RESOLUTION: u32 = 64;
const BATCH: u32 = 4;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("normalized latency vs ROB size (performance-first, batch {BATCH})");
    print!("{:<11}", "network");
    for rob in ROBS {
        print!(" {:>8}", format!("rob={rob}"));
    }
    println!();
    for name in NETWORKS {
        let net = zoo::by_name(name, RESOLUTION).expect("zoo network");
        print!("{name:<11}");
        let mut base = None;
        for &rob in ROBS {
            let arch = ArchConfig::paper_default().with_rob(rob);
            let compiled = Compiler::new(&arch)
                .mapping(MappingPolicy::PerformanceFirst)
                .batch(BATCH)
                .compile(&net)?;
            let report = Simulator::new(&arch).run(&compiled.program)?;
            let lat = report.latency.as_ns_f64();
            let b = *base.get_or_insert(lat);
            print!(" {:>8.3}", lat / b);
        }
        println!();
    }
    println!("\npaper Fig. 4: monotone decrease with a small 12->16 step (structure hazard)");
    Ok(())
}

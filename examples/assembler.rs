//! Programming the accelerator by hand in assembly.
//!
//! Demonstrates the ISA directly: crossbar group configuration, the four
//! instruction classes, scalar loops, and synchronized transfers between
//! two cores — then runs the program on the cycle-accurate simulator.
//!
//! ```sh
//! cargo run --release --example assembler
//! ```

use pimsim::isa::asm;
use pimsim::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let arch = ArchConfig::small_test();

    // Core 0 owns a 16x16 crossbar group (timing-only weights), fills an
    // input vector, runs 4 MVMs in a scalar loop and streams each result
    // to core 1, which accumulates them.
    let program = asm::assemble(
        r#"
        ; producer core: crossbar MVMs in a loop
        .core 0
        .group 0 in=16 out=16 xbars=0,1
            vfill   [r0+0], 3, 16          ; input vector
            li      r1, 4                  ; loop counter
    loop:
            mvm     g0, [r0+32], [r0+0], 16  ; timing-only MVM (no weights)
            vaddi   [r0+0], [r0+0], 1, 16    ; perturb inputs
            send    core1, [r0+0], 16, tag=7 ; stream the live inputs
            addi    r1, r1, -1
            bne     r1, r0, loop
            halt

        ; consumer core: receive and accumulate
        .core 1
            vfill   [r0+64], 0, 16
            li      r2, 4
    drain:
            recv    core0, [r0+0], 16, tag=7
            vadd    [r0+64], [r0+64], [r0+0], 16
            addi    r2, r2, -1
            bne     r2, r0, drain
            vrelu   [r0+64], [r0+64], 16
            halt
    "#,
    )?;

    println!("{}", asm::disassemble(&program));
    let report = Simulator::new(&arch).run(&program)?;
    println!("latency      : {}", report.latency);
    println!("instructions : {}", report.instructions);
    println!(
        "classes      : matrix {}, vector {}, transfer {}, scalar {}",
        report.class_counts[0],
        report.class_counts[1],
        report.class_counts[2],
        report.class_counts[3]
    );
    println!("accumulator  : {:?}", report.read_local(1, 64, 4));
    Ok(())
}

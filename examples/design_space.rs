//! Hardware design-space exploration — the use case the paper's abstract
//! promises ("a more convenient way to evaluate the effectiveness of
//! software/hardware optimizations").
//!
//! Sweeps three hardware knobs independently around the paper's baseline
//! chip and reports simulated latency/energy for vgg8, holding the
//! software (network, mapping, batch) fixed:
//!
//! * ADCs per crossbar (the ADC-sharing bottleneck),
//! * vector SIMD lanes,
//! * NoC link width (flit bytes),
//! * the crossbar structure hazard (ablation: what an idealized
//!   conflict-free matrix unit would buy).
//!
//! ```sh
//! cargo run --release --example design_space
//! ```

use pimsim::nn::zoo;
use pimsim::prelude::*;

fn measure(arch: &ArchConfig) -> (SimTime, f64) {
    let net = zoo::vgg8(32);
    let compiled = Compiler::new(arch)
        .mapping(MappingPolicy::PerformanceFirst)
        .functional(false)
        .batch(2)
        .compile(&net)
        .expect("compiles");
    let report = Simulator::new(arch).run(&compiled.program).expect("runs");
    (report.latency / 2, report.energy.total().as_uj() / 2.0)
}

fn main() {
    let base = ArchConfig::paper_default().with_rob(8);
    let (lat0, e0) = measure(&base);
    println!("baseline (paper chip, ROB=8): {lat0} / {e0:.1} uJ per image\n");
    println!(
        "{:<28} {:>12} {:>10} {:>12} {:>10}",
        "variant", "latency", "vs base", "energy", "vs base"
    );

    let show = |name: &str, arch: &ArchConfig| {
        let (lat, e) = measure(arch);
        println!(
            "{name:<28} {:>12} {:>9.2}x {:>10.1} uJ {:>9.2}x",
            format!("{lat}"),
            lat.as_ns_f64() / lat0.as_ns_f64(),
            e,
            e / e0
        );
    };

    for adcs in [2u32, 4, 8] {
        let mut a = base.clone();
        a.resources.adcs_per_xbar = adcs;
        show(&format!("adcs_per_xbar = {adcs}"), &a);
    }
    for lanes in [16u32, 64, 128] {
        let mut a = base.clone();
        a.resources.vector_lanes = lanes;
        show(&format!("vector_lanes = {lanes}"), &a);
    }
    for flit in [8u32, 64] {
        let mut a = base.clone();
        a.noc.flit_bytes = flit;
        show(&format!("noc flit = {flit} B"), &a);
    }
    {
        let mut a = base.clone();
        a.sim.structure_hazard = false;
        show("no structure hazard (ideal)", &a);
    }
    println!("\nEach row re-runs the same compiled workload on a different chip —");
    println!("the ISA boundary is what makes the sweep a one-liner (paper §I).");
}

//! Hardware design-space exploration — the use case the paper's abstract
//! promises ("a more convenient way to evaluate the effectiveness of
//! software/hardware optimizations").
//!
//! Sweeps three hardware knobs independently around the paper's baseline
//! chip and reports simulated latency/energy for vgg8, holding the
//! software (network, mapping, batch) fixed:
//!
//! * ADCs per crossbar (the ADC-sharing bottleneck),
//! * vector SIMD lanes,
//! * NoC link width (flit bytes),
//! * the crossbar structure hazard (ablation: what an idealized
//!   conflict-free matrix unit would buy).
//!
//! The scenarios run on the `pimsim-sweep` campaign engine: one worker
//! per host core, results collected in scenario order.
//!
//! ```sh
//! cargo run --release --example design_space
//! ```

use pimsim::prelude::*;
use pimsim::sweep::SweepRow;

const BATCH: u32 = 2;

fn scenario(label: &str, arch: &ArchConfig) -> Scenario {
    Scenario::cycle(
        "vgg8",
        32,
        MappingPolicy::PerformanceFirst,
        BATCH,
        arch.clone(),
    )
    .with_label(label)
}

fn main() {
    let base = ArchConfig::paper_default().with_rob(8);
    let mut scenarios = vec![scenario("baseline", &base)];
    for adcs in [2u32, 4, 8] {
        let mut a = base.clone();
        a.resources.adcs_per_xbar = adcs;
        scenarios.push(scenario(&format!("adcs_per_xbar = {adcs}"), &a));
    }
    for lanes in [16u32, 64, 128] {
        let mut a = base.clone();
        a.resources.vector_lanes = lanes;
        scenarios.push(scenario(&format!("vector_lanes = {lanes}"), &a));
    }
    for flit in [8u32, 64] {
        let mut a = base.clone();
        a.noc.flit_bytes = flit;
        scenarios.push(scenario(&format!("noc flit = {flit} B"), &a));
    }
    {
        let mut a = base.clone();
        a.sim.structure_hazard = false;
        scenarios.push(scenario("no structure hazard (ideal)", &a));
    }

    let threads = default_threads();
    let rows = run_scenarios(scenarios, threads).expect("design-space sweep");

    let per_image_uj = |r: &SweepRow| r.energy_pj / 1e6 / BATCH as f64;
    let (base_row, variants) = rows.split_first().expect("baseline row");
    let lat0 = base_row.latency_per_image();
    let e0 = per_image_uj(base_row);
    println!("baseline (paper chip, ROB=8): {lat0} / {e0:.1} uJ per image\n");
    println!(
        "{:<28} {:>12} {:>10} {:>12} {:>10}",
        "variant", "latency", "vs base", "energy", "vs base"
    );

    for r in variants {
        let lat = r.latency_per_image();
        let e = per_image_uj(r);
        println!(
            "{:<28} {:>12} {:>9.2}x {:>10.1} uJ {:>9.2}x",
            r.scenario.display_label(),
            format!("{lat}"),
            lat.as_ns_f64() / lat0.as_ns_f64(),
            e,
            e / e0
        );
    }
    println!("\nEach row re-runs the same compiled workload on a different chip —");
    println!("the ISA boundary is what makes the sweep a one-liner (paper §I).");
}

//! Comparison with the MNSIM2.0-like baseline (the paper's Fig. 5).
//!
//! Runs the three networks from the MNSIM2.0 source tree (VGG-8, VGG-16,
//! resnet-18) on both simulators with the same crossbar configuration and
//! prints latencies normalized to the baseline, plus the per-layer
//! communication-latency ratio of the second convolution that the paper
//! analyses (18% under MNSIM2.0's idealistic asynchronous communication vs
//! 77% under synchronized transfers, at the paper's scale).
//!
//! ```sh
//! cargo run --release --example baseline_comparison
//! ```

use pimsim::baseline::BaselineSimulator;
use pimsim::nn::zoo;
use pimsim::prelude::*;

const RESOLUTION: u32 = 32;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let arch = ArchConfig::paper_default().with_rob(16);
    println!(
        "{:<10} {:>12} {:>12} {:>10} {:>16} {:>16}",
        "network", "baseline", "ours", "ours/base", "conv2 comm base", "conv2 comm ours"
    );
    for name in ["vgg8", "vgg16", "resnet18"] {
        let net = zoo::by_name(name, RESOLUTION).expect("zoo network");
        let base = BaselineSimulator::new(&arch).run(&net)?;
        let compiled = Compiler::new(&arch)
            .mapping(MappingPolicy::PerformanceFirst)
            .compile(&net)?;
        let ours = Simulator::new(&arch).run(&compiled.program)?;

        // The "second convolutional layer" of each network.
        let conv2 = compiled
            .node_names
            .iter()
            .enumerate()
            .filter(|(_, n)| n.contains("conv"))
            .map(|(i, _)| i)
            .nth(1)
            .unwrap_or(1);
        println!(
            "{name:<10} {:>12} {:>12} {:>9.2}x {:>15.0}% {:>15.0}%",
            format!("{}", base.latency),
            format!("{}", ours.latency),
            ours.latency.as_ns_f64() / base.latency.as_ns_f64(),
            100.0 * base.per_layer[conv2].comm_ratio(),
            100.0 * ours.comm_ratio(conv2 as u16),
        );
    }
    println!("\npaper Fig. 5: ours slower than MNSIM2.0 (~10% on VGG, 53% on resnet-18);");
    println!("the synchronized-transfer simulator reports a far larger communication share.");
    Ok(())
}
